//! End-to-end performance benchmark of the estimate → generate → queue
//! pipeline, plus the serial-vs-parallel determinism gate.
//!
//! Two modes:
//!
//! - **full** (default): paper-scale workloads; writes the machine-readable
//!   report to `BENCH_pipeline.json` (override with `--out <path>`).
//! - **`--test`**: CI smoke mode — small workloads, no report file unless
//!   `--out` is given. The determinism checks always run; any divergence
//!   between serial and parallel output exits nonzero.
//!
//! `--best-of <n>` runs the whole suite `n` times and keeps the
//! per-entry minimum (see [`PerfReport::merge_min`]) — use it when
//! regenerating the checked-in reference so the file records floors.
//! `--check-against <report.json>` compares this run's per-group summed
//! secs against the reference and exits nonzero on any regression past
//! the tolerance recorded in the file; on a miss the suite re-runs (up
//! to 3 passes total) and the gate judges the merged floor, so timing
//! noise cannot fail the job but a real slowdown still does.
//!
//! Observability flags:
//!
//! - **`--trace-json <path>`**: install the [`vbr_stats::obs`] span
//!   collector for the whole run and dump the span tree (plus all
//!   pipeline counters) as JSON on exit.
//! - **`--obs-check`**: standalone mode — time a representative
//!   generate → marginal → queue workload with the collector off and
//!   then on, and exit nonzero if the collector-on overhead exceeds 5%.
//! - **`--ckpt-check`**: standalone mode — time the streaming pipeline
//!   with checkpointing off and then on (1M-slice cadence into the
//!   two-generation store), and exit nonzero if the checkpointing
//!   overhead exceeds 5% (DESIGN.md §13 budget).
//!
//! The baselines are honest re-implementations of the pre-optimisation
//! code paths (the drifting-twiddle FFT kernel, the `powf`-per-frequency
//! Whittle objective, cold-plan / cold-cache calls, `with_threads(1)`
//! runs), so every `speedup` field in the report is old-vs-new on the
//! same machine and workload.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use vbr_bench::checkpoint::{CheckpointStore, PipelineState, TraceDigest};
use vbr_bench::perf::{
    check_against, rustc_version, time_median, PerfReport, REGRESSION_TOLERANCE,
};
use vbr_bench::{Corruption, FaultInjector};
use vbr_fft::{fft_pow2_in_place, reference_radix2, Complex, Direction, FftPlan};
use vbr_fgn::{BatchFgn, DaviesHarte, FgnStream, MarginalTransform, TableMode};
use vbr_lrd::{
    robust_hurst, whittle_objective_direct, SpectralModel, WhittleObjective,
};
use vbr_qsim::{
    aggregate_arrivals, lag_combinations, qc_curve, FluidQueue, LossMetric, LossTarget, MuxSim,
};
use vbr_serve::{Fleet, FleetConfig, SourceModel, TenantSpec};
use vbr_stats::dist::{ContinuousDist, GammaPareto};
use vbr_stats::obs;
use vbr_stats::par::{num_threads, with_threads};
use vbr_stats::periodogram::Periodogram;
use vbr_stats::rng::Xoshiro256;
use vbr_video::{generate_screenplay, generate_screenplay_batch, ScreenplayConfig};

/// Workload sizes for the two modes.
struct Sizes {
    fft_n: usize,
    whittle_n: usize,
    hurst_n: usize,
    trace_frames: usize,
    stream_n: usize,
    qc_grid: Vec<f64>,
    qc_iters: usize,
    fleet_sources: usize,
    reps: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            fft_n: 1 << 18,
            whittle_n: 1 << 16,
            hurst_n: 65_536,
            trace_frames: 20_000,
            stream_n: 1 << 20,
            qc_grid: vec![0.0005, 0.001, 0.002, 0.005, 0.01, 0.05],
            qc_iters: 14,
            fleet_sources: 32_768,
            reps: 5,
        }
    }

    fn test() -> Sizes {
        Sizes {
            fft_n: 1 << 12,
            whittle_n: 1 << 11,
            hurst_n: 4_096,
            trace_frames: 2_000,
            stream_n: 1 << 16,
            qc_grid: vec![0.001, 0.01],
            qc_iters: 6,
            fleet_sources: 2_048,
            reps: 2,
        }
    }
}

/// One pass over every benchmark tier. `--best-of` and the regression
/// gate's retry loop fold several passes into one report with
/// [`PerfReport::merge_min`], so checked-in references and gate runs
/// both measure per-entry floors rather than single noisy samples.
fn run_suite(sizes: &Sizes) -> PerfReport {
    let mut report = PerfReport::new();
    bench_kernels(sizes, &mut report);
    bench_kernels_simd(sizes, &mut report);
    bench_kernels_wide(sizes, &mut report);
    bench_kernels_batch_fft(sizes, &mut report);
    bench_estimators(sizes, &mut report);
    bench_simulation(sizes, &mut report);
    bench_streaming(sizes, &mut report);
    bench_batch_fgn(sizes, &mut report);
    bench_checkpoint(sizes, &mut report);
    bench_fleet(sizes, &mut report);
    bench_models(sizes, &mut report);
    report
}

fn main() -> ExitCode {
    let mut test_mode = false;
    let mut obs_check = false;
    let mut ckpt_check = false;
    let mut out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut best_of: usize = 1;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => test_mode = true,
            "--obs-check" => obs_check = true,
            "--ckpt-check" => ckpt_check = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            "--trace-json" => {
                trace_out = Some(PathBuf::from(args.next().expect("--trace-json needs a path")))
            }
            "--check-against" => {
                check = Some(PathBuf::from(args.next().expect("--check-against needs a path")))
            }
            "--best-of" => {
                best_of = args
                    .next()
                    .expect("--best-of needs a count")
                    .parse()
                    .expect("--best-of needs a positive integer");
                assert!(best_of >= 1, "--best-of needs a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: pipeline_bench [--test] [--out <path>] [--best-of <n>] \
                     [--trace-json <path>] [--check-against <report.json>] \
                     [--obs-check] [--ckpt-check]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if obs_check {
        return obs_overhead_check();
    }
    if ckpt_check {
        return ckpt_overhead_check();
    }
    let sizes = if test_mode { Sizes::test() } else { Sizes::full() };
    let threads = num_threads();
    println!(
        "pipeline_bench: mode={}, worker threads={threads}",
        if test_mode { "test" } else { "full" }
    );
    if trace_out.is_some() {
        // Collect spans for the whole run; counters are always on.
        obs::install_collector(1 << 13);
    }

    let divergences = check_determinism(&sizes);
    if divergences > 0 {
        eprintln!("FAIL: {divergences} serial-vs-parallel divergence(s)");
        return ExitCode::FAILURE;
    }
    println!("determinism: parallel output bit-identical to serial (threads 1/2/{threads})");

    let mut report = run_suite(&sizes);
    for _ in 1..best_of {
        report.merge_min(&run_suite(&sizes));
    }
    report.print_summary();

    if let Some(cpath) = &check {
        // The comparison is absolute wall-clock per group, so it is only
        // meaningful when this run uses the same mode (sizes/reps) and
        // host class as the run that produced the reference file — CI
        // runs the gate in full mode against the checked-in full-mode
        // report. The reference records per-entry minima (--best-of), so
        // a single noisy sample here must not fail the job: on a miss
        // the whole suite re-runs (up to `GATE_MAX_RUNS` passes total)
        // and the gate compares the merged per-entry floor. Noise-driven
        // misses vanish under the min; a real regression raises the
        // floor itself and fails every pass.
        const GATE_MAX_RUNS: usize = 3;
        let old = match std::fs::read_to_string(cpath) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {}: {e}", cpath.display());
                return ExitCode::FAILURE;
            }
        };
        println!(
            "regression gate vs {} (budget {:.0}% per group):",
            cpath.display(),
            (REGRESSION_TOLERANCE - 1.0) * 100.0
        );
        let mut runs = best_of;
        let lines = loop {
            match check_against(&old, report.entries(), REGRESSION_TOLERANCE) {
                Ok(lines) => break lines,
                Err(fails) if runs < GATE_MAX_RUNS => {
                    println!("  over budget after {runs} run(s); re-measuring:");
                    for l in &fails {
                        println!("    {l}");
                    }
                    runs += 1;
                    report.merge_min(&run_suite(&sizes));
                }
                Err(fails) => {
                    for l in fails {
                        eprintln!("  {l}");
                    }
                    eprintln!("FAIL: benchmark regression gate (min of {runs} run(s))");
                    return ExitCode::FAILURE;
                }
            }
        };
        for l in lines {
            println!("  {l}");
        }
    }

    let explicit_out = out.is_some();
    let path = out.unwrap_or_else(|| PathBuf::from("BENCH_pipeline.json"));
    // Check mode never clobbers the reference it just compared against;
    // an explicit --out still records the run.
    let write_report = if check.is_some() {
        explicit_out
    } else {
        !test_mode || path.as_os_str() != "BENCH_pipeline.json"
    };
    if write_report {
        match report.write(&path, threads, &rustc_version()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(tpath) = trace_out {
        let snap = obs::uninstall_collector().expect("collector was installed above");
        match std::fs::write(&tpath, obs::trace_json(&snap)) {
            Ok(()) => println!(
                "wrote {} ({} spans/events, {} dropped)",
                tpath.display(),
                snap.records.len(),
                snap.dropped
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", tpath.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Observability overhead gate
// ---------------------------------------------------------------------------

/// Times a representative generate → marginal → queue workload with the
/// span collector uninstalled and then installed, and fails if the
/// collector-on median exceeds the off median by more than 5% (the CI
/// ceiling; the design budget for the counters alone is ≤2% on the
/// `kernels_simd` tier).
fn obs_overhead_check() -> ExitCode {
    assert!(!obs::collector_installed(), "collector must start uninstalled");
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
    let dt = 1.0 / (24.0 * 30.0);
    let n = 1usize << 14;
    let mut workload = || {
        let gauss = DaviesHarte::new(0.8, 1.0).generate(n, 9);
        let traffic = xform.map_series(&gauss);
        let mut q = FluidQueue::new(1e6, 27_791.0 / dt * 1.2);
        let mut loss = 0.0;
        for chunk in traffic.chunks(4096) {
            loss += q.step_block(chunk, dt);
        }
        std::hint::black_box(loss);
    };
    let (warmup, reps) = (3, 15);
    let t_off = time_median(warmup, reps, &mut workload);
    obs::install_collector(1 << 13);
    let t_on = time_median(warmup, reps, &mut workload);
    obs::uninstall_collector();
    let overhead = t_on / t_off - 1.0;
    println!(
        "obs-check: collector off {t_off:.6}s, on {t_on:.6}s, overhead {:+.2}%",
        overhead * 100.0
    );
    if overhead > 0.05 {
        eprintln!("FAIL: collector-on overhead {:.2}% exceeds the 5% budget", overhead * 100.0);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Checkpoint overhead gate
// ---------------------------------------------------------------------------

/// Runs the streaming generate → marginal → queue pipeline over `n`
/// slices, checkpointing the full pipeline state every `every` slices
/// into `store` (never when `every == 0`), and returns the final queue
/// loss as a side-effect sink.
fn stream_with_checkpoints(n: usize, every: u64, store: Option<&CheckpointStore>) -> f64 {
    let block = 1usize << 14;
    let chunk = 1usize << 13;
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
    let dt = 1.0 / (24.0 * 30.0);
    let mut src = FgnStream::new(0.8, 1.0, block, 42);
    let mut buf = vec![0.0f64; chunk];
    let mut q = FluidQueue::new(1e6, 27_791.0 / dt * 1.2);
    let mut digest = TraceDigest::new();
    let mut total_bytes = 0.0f64;
    let mut done = 0u64;
    let mut seq = 0u64;
    let mut next_ckpt = if every > 0 { every } else { u64::MAX };
    while done < n as u64 {
        let take = (n as u64 - done).min(buf.len() as u64) as usize;
        xform.map_block_from(&mut src, &mut buf[..take]);
        digest.update(&buf[..take]);
        total_bytes += vbr_stats::simd::sum_sequential(&buf[..take]);
        q.step_block(&buf[..take], dt);
        done += take as u64;
        if done >= next_ckpt {
            let state = PipelineState {
                slices_done: done,
                total_bytes,
                digest: digest.value(),
                checkpoint_writes: seq + 1,
                stream: src.export_state(),
                queue: q.export_state(),
            };
            store
                .expect("cadence implies store")
                .write(&state, 0xBE7C, seq)
                .expect("checkpoint write");
            seq += 1;
            next_ckpt = done + every;
        }
    }
    q.loss_rate()
}

/// Times the streaming loop with checkpointing off and on in strictly
/// alternating pairs and returns `(t_off, t_on, overhead)`, where the
/// overhead is the median of per-pair on/off time ratios. Pairing makes
/// the estimate robust to minutes-scale load drift on a shared host,
/// which a median over two separately-timed blocks is not: the real
/// cost of a checkpoint write here is ~1 ms (128 KiB + fsync), far
/// below the run-to-run CPU jitter of the 0.4 s compute arm.
fn ckpt_paired_overhead(
    n: usize,
    every: u64,
    store: &CheckpointStore,
    warmup: usize,
    reps: usize,
) -> (f64, f64, f64) {
    for _ in 0..warmup {
        std::hint::black_box(stream_with_checkpoints(n, 0, None));
        std::hint::black_box(stream_with_checkpoints(n, every, Some(store)));
    }
    let mut offs = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    for rep in 0..reps {
        // Alternate which arm runs first so a periodic external stall
        // (cgroup throttling, a neighbor tenant) cannot phase-lock onto
        // one arm and masquerade as checkpoint overhead.
        let time_arm = |on: bool| {
            let t0 = Instant::now();
            if on {
                std::hint::black_box(stream_with_checkpoints(n, every, Some(store)));
            } else {
                std::hint::black_box(stream_with_checkpoints(n, 0, None));
            }
            t0.elapsed().as_secs_f64()
        };
        let (off, on) = if rep % 2 == 0 {
            let off = time_arm(false);
            (off, time_arm(true))
        } else {
            let on = time_arm(true);
            (time_arm(false), on)
        };
        offs.push(off);
        ratios.push(on / off);
    }
    let med = |v: &mut [f64]| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let t_off = med(&mut offs);
    let ratio = med(&mut ratios);
    (t_off, t_off * ratio, ratio - 1.0)
}

/// Times the streaming pipeline with checkpointing off and on at a
/// 1M-slice cadence, and fails if the checkpointing overhead exceeds
/// the 5% DESIGN.md §13 budget. Up to three trials: a trial that lands
/// inside the budget passes immediately, so a transient load spike on
/// the runner cannot flake the job, while a real regression (which
/// inflates every trial) still fails.
fn ckpt_overhead_check() -> ExitCode {
    let n: usize = 4 << 20; // 4 Mi slices → 4 checkpoints at the 1M cadence
    let every: u64 = 1 << 20;
    let dir = std::env::temp_dir().join("vbr_ckpt_gate");
    std::fs::remove_dir_all(&dir).ok();
    let store = CheckpointStore::new(&dir).expect("temp checkpoint store");
    let mut overhead = f64::INFINITY;
    for trial in 0..3 {
        let warmup = if trial == 0 { 1 } else { 0 };
        let (t_off, t_on, oh) = ckpt_paired_overhead(n, every, &store, warmup, 7);
        println!(
            "ckpt-check: checkpointing off {t_off:.6}s, on {t_on:.6}s ({} writes/run), \
             overhead {:+.2}% (trial {})",
            n as u64 / every,
            oh * 100.0,
            trial + 1
        );
        overhead = overhead.min(oh);
        if overhead <= 0.05 {
            break;
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    if overhead > 0.05 {
        eprintln!(
            "FAIL: checkpointing overhead {:.2}% exceeds the 5% budget",
            overhead * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Determinism gate
// ---------------------------------------------------------------------------

/// Runs every parallelized stage at 1, 2 and `num_threads()` workers and
/// counts stages whose output is not bit-identical across thread counts.
fn check_determinism(sizes: &Sizes) -> usize {
    let thread_grid = [1usize, 2, num_threads().max(4)];
    let mut divergences = 0;

    // Estimation: the full ensemble on a clean LRD series.
    let xs = DaviesHarte::new(0.8, 1.0).generate(sizes.hurst_n, 11);
    let hurst_sig = |t: usize| {
        with_threads(t, || {
            let r = robust_hurst(&xs).expect("clean series must estimate");
            let mut sig: Vec<u64> = r.estimates.iter().map(|&(_, h)| h.to_bits()).collect();
            sig.push(r.hurst.to_bits());
            sig
        })
    };
    divergences += compare_across("robust_hurst", &thread_grid, hurst_sig);

    // Estimation under injected faults: degraded output (including which
    // estimators failed) must not depend on the thread count.
    let inj = FaultInjector::new(99);
    let bad = inj.apply(&xs, Corruption::NegateRun);
    let fault_sig = |t: usize| {
        with_threads(t, || match robust_hurst(&bad) {
            Ok(r) => {
                let mut sig: Vec<String> =
                    r.estimates.iter().map(|(k, h)| format!("{k:?}:{:016x}", h.to_bits())).collect();
                sig.extend(r.failures.iter().map(|(k, e)| format!("{k:?}:{e:?}")));
                sig
            }
            Err(e) => vec![format!("err:{e:?}")],
        })
    };
    divergences += compare_across("robust_hurst_faulted", &thread_grid, fault_sig);

    // Generation: the multi-source screenplay batch.
    let configs = vec![
        ScreenplayConfig::short(sizes.trace_frames / 2, 1),
        ScreenplayConfig::short(sizes.trace_frames / 2, 2),
        ScreenplayConfig::short(sizes.trace_frames / 2, 3),
    ];
    let batch_sig = |t: usize| with_threads(t, || generate_screenplay_batch(&configs));
    divergences += compare_across("screenplay_batch", &thread_grid, batch_sig);

    // Queueing: MuxSim metrics and a Q-C sweep.
    let trace = generate_screenplay(&ScreenplayConfig::short(sizes.trace_frames, 4));
    let sim = MuxSim::new(&trace, 3, 5);
    let cap = sim.mean_rate() * 1.2;
    let run_sig = |t: usize| {
        with_threads(t, || {
            let l = sim.run(cap, 0.002 * cap);
            (l.p_l.to_bits(), l.p_wes.to_bits())
        })
    };
    divergences += compare_across("mux_run", &thread_grid, run_sig);

    let qc_sig = |t: usize| {
        with_threads(t, || {
            qc_curve(&sim, &sizes.qc_grid, LossTarget::Rate(1e-2), LossMetric::Overall, sizes.qc_iters)
                .iter()
                .map(|p| p.capacity_per_source.to_bits())
                .collect::<Vec<u64>>()
        })
    };
    divergences += compare_across("qc_curve", &thread_grid, qc_sig);

    // Fleet serving: the sharded lockstep aggregate (parallel shard
    // advance + parallel slot aggregation) across worker counts.
    let fleet_specs: Vec<TenantSpec> = (0..96u64).map(|t| fleet_spec(t, 16)).collect();
    let fleet_sig = |t: usize| {
        with_threads(t, || {
            let mut fleet = Fleet::new(FleetConfig::fixed(4, 16, usize::MAX));
            for s in &fleet_specs {
                fleet.admit(*s).expect("determinism specs are valid");
            }
            let mut slot = vec![0.0f64; 16];
            let mut sig = Vec::with_capacity(4 * 16);
            for _ in 0..4 {
                fleet.advance_slot(&mut slot);
                sig.extend(slot.iter().map(|x| x.to_bits()));
            }
            sig
        })
    };
    divergences += compare_across("fleet_slot", &thread_grid, fleet_sig);

    divergences
}

/// Evaluates `f` at each thread count and reports whether all results match.
fn compare_across<T: PartialEq + std::fmt::Debug>(
    what: &str,
    grid: &[usize],
    f: impl Fn(usize) -> T,
) -> usize {
    let reference = f(grid[0]);
    for &t in &grid[1..] {
        let got = f(t);
        if got != reference {
            eprintln!("divergence in {what}: threads={} differs from threads={}", t, grid[0]);
            return 1;
        }
    }
    0
}

// ---------------------------------------------------------------------------
// Kernels tier
// ---------------------------------------------------------------------------

/// The pre-optimisation radix-2 kernel: twiddles accumulated by repeated
/// multiplication (`w *= wlen`) and recomputed on every call. Kept here
/// verbatim as the honest baseline for the plan-table kernel.
fn legacy_fft_pow2(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

fn bench_kernels(sizes: &Sizes, report: &mut PerfReport) {
    let n = sizes.fft_n;
    let mut rng = Xoshiro256::seed_from_u64(1);
    let input: Vec<Complex> =
        (0..n).map(|_| Complex::from_re(rng.standard_normal())).collect();

    // Legacy accumulating kernel vs the plan-table kernel (cache warm).
    let mut buf = input.clone();
    let t_legacy = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        legacy_fft_pow2(&mut buf, Direction::Forward);
    });
    let t_plan = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        fft_pow2_in_place(&mut buf, Direction::Forward);
    });
    report.record_vs(
        "kernels",
        "fft_legacy_vs_plan_table",
        t_legacy,
        t_plan,
        (1, sizes.reps),
        &format!("radix-2 forward FFT, n={n}; baseline recomputes twiddles by accumulation every call"),
    );

    // Cold plan construction vs the cached-plan hit for repeated sizes.
    let t_cold = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        let plan = FftPlan::new(n);
        plan.process(&mut buf, Direction::Forward);
    });
    let t_cached = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        let plan = vbr_fft::plan_for(n);
        plan.process(&mut buf, Direction::Forward);
    });
    report.record_vs(
        "kernels",
        "fft_plan_cold_vs_cached",
        t_cold,
        t_cached,
        (1, sizes.reps),
        &format!("same-size repeated FFT, n={n}; baseline rebuilds bit-rev + twiddle tables per call"),
    );

    // Davies-Harte with a cold spectrum cache vs the memoized path.
    let gen_n = sizes.whittle_n;
    let mut h_step = 0u64;
    let t_cold_gen = time_median(1, sizes.reps, || {
        // A fresh H each call defeats the (H, m) memo key, forcing the
        // full ACVF + eigenvalue-FFT rebuild the cache normally skips.
        h_step += 1;
        let h = 0.8 + (h_step as f64) * 1e-12;
        DaviesHarte::new(h, 1.0).generate(gen_n, 7);
    });
    let warm = DaviesHarte::new(0.8, 1.0);
    warm.generate(gen_n, 7);
    let t_warm_gen = time_median(1, sizes.reps, || {
        warm.generate(gen_n, 7);
    });
    report.record_vs(
        "kernels",
        "davies_harte_cold_vs_memoized",
        t_cold_gen,
        t_warm_gen,
        (1, sizes.reps),
        &format!("fGn generation, n={gen_n}; baseline rebuilds the circulant spectrum every call"),
    );
}

// ---------------------------------------------------------------------------
// SIMD-kernels tier: each vectorised hot loop against the verbatim
// pre-optimisation scalar path it replaced.
// ---------------------------------------------------------------------------

/// The pre-batch inverse normal CDF: Acklam's rational approximation
/// followed by one Halley refinement against the library `norm_cdf`.
/// Kept verbatim as the baseline for the blocked AS241 quantile kernel.
fn legacy_norm_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    let e = vbr_stats::norm_cdf(x) - p;
    let u = e / vbr_stats::norm_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

/// The pre-slopes marginal table: grid lookup, knot walk, and the
/// division-form interpolation `t[i] + frac * (t[i+1] - t[i])` with
/// `frac = (z - zk[i]) / (zk[i+1] - zk[i])` per sample. Rebuilt from
/// the public quantile functions with the same knot layout the
/// transform uses.
struct LegacyTableTransform {
    table: Vec<f64>,
    zknots: Vec<f64>,
    zgrid: Vec<u32>,
    zgrid_lo: f64,
    zgrid_inv_step: f64,
}

impl LegacyTableTransform {
    fn new(target: &GammaPareto, n: usize) -> Self {
        let (table, zknots): (Vec<f64>, Vec<f64>) = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                (target.quantile(u), vbr_stats::norm_quantile(u))
            })
            .unzip();
        let (lo, hi) = (zknots[0], zknots[n - 1]);
        let cells = 2 * n;
        let step = (hi - lo) / cells as f64;
        let mut zgrid = Vec::with_capacity(cells);
        let mut i = 0u32;
        for g in 0..cells {
            let edge = lo + g as f64 * step;
            while (i as usize + 1) < n && zknots[i as usize + 1] <= edge {
                i += 1;
            }
            zgrid.push(i);
        }
        LegacyTableTransform { table, zknots, zgrid, zgrid_lo: lo, zgrid_inv_step: 1.0 / step }
    }

    fn map(&self, z: f64) -> f64 {
        let (t, zk) = (&self.table, &self.zknots);
        let n = t.len();
        if z <= zk[0] {
            t[0]
        } else if z >= zk[n - 1] {
            t[n - 1]
        } else {
            let g = ((z - self.zgrid_lo) * self.zgrid_inv_step) as usize;
            let mut i = self.zgrid[g.min(self.zgrid.len() - 1)] as usize;
            while zk[i + 1] < z {
                i += 1;
            }
            let frac = (z - zk[i]) / (zk[i + 1] - zk[i]);
            t[i] + frac * (t[i + 1] - t[i])
        }
    }
}

fn bench_kernels_simd(sizes: &Sizes, report: &mut PerfReport) {
    let n = sizes.stream_n;

    // Bulk standard-normal generation: one sample at a time through the
    // Acklam+Halley inverse CDF, vs the batched uniform fill + blocked
    // AS241 quantile kernel.
    let mut buf = vec![0.0f64; n];
    let t_scalar_normal = time_median(1, sizes.reps, || {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for x in buf.iter_mut() {
            *x = legacy_norm_quantile(rng.open01());
        }
        std::hint::black_box(buf[n - 1]);
    });
    let t_batch_normal = time_median(1, sizes.reps, || {
        let mut rng = Xoshiro256::seed_from_u64(11);
        rng.fill_standard_normal(&mut buf);
        std::hint::black_box(buf[n - 1]);
    });
    report.record_vs(
        "kernels_simd",
        "bulk_normal_acklam_vs_batch_as241",
        t_scalar_normal,
        t_batch_normal,
        (1, sizes.reps),
        &format!(
            "{n} standard normals; baseline is the per-sample Acklam inverse CDF with a \
             Halley step (norm_cdf + norm_pdf per draw), new path fills uniforms then runs \
             the blocked AS241 quantile kernel"
        ),
    );

    // FFT butterflies: the stage-by-stage radix-2 scalar twin vs the
    // radix-4 SoA kernel, both on precomputed plan tables.
    let fft_n = sizes.fft_n;
    let mut rng = Xoshiro256::seed_from_u64(12);
    let input: Vec<Complex> =
        (0..fft_n).map(|_| Complex::from_re(rng.standard_normal())).collect();
    let mut cbuf = input.clone();
    let plan = vbr_fft::plan_for(fft_n);
    let t_radix2 = time_median(1, sizes.reps, || {
        cbuf.copy_from_slice(&input);
        reference_radix2(&mut cbuf, Direction::Forward);
    });
    let t_radix4 = time_median(1, sizes.reps, || {
        cbuf.copy_from_slice(&input);
        plan.process(&mut cbuf, Direction::Forward);
    });
    report.record_vs(
        "kernels_simd",
        "fft_radix2_scalar_vs_radix4_soa",
        t_radix2,
        t_radix4,
        (1, sizes.reps),
        &format!(
            "forward FFT, n={fft_n}; baseline is the scalar radix-2 twin (tabulated \
             twiddles), new kernel runs radix-4 butterflies over split re/im twiddle tables"
        ),
    );

    // Marginal transform: division-form per-sample table walk vs the
    // slope-table blocked kernel.
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
    let legacy = LegacyTableTransform::new(&target, 10_000);
    let mut rng = Xoshiro256::seed_from_u64(13);
    let gauss: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    let t_walk = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&gauss);
        for x in buf.iter_mut() {
            *x = legacy.map(*x);
        }
        std::hint::black_box(buf[n - 1]);
    });
    let t_blocked = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&gauss);
        xform.map_inplace(&mut buf);
        std::hint::black_box(buf[n - 1]);
    });
    report.record_vs(
        "kernels_simd",
        "marginal_table_walk_vs_blocked",
        t_walk,
        t_blocked,
        (1, sizes.reps),
        &format!(
            "{n} samples through the 10000-point Gamma/Pareto table; baseline interpolates \
             with a division per sample, blocked kernel uses precomputed slopes in \
             4-lane chunks"
        ),
    );

    // FIFO recurrence: per-slot `step` calls vs the block pass that
    // pre-aggregates arrivals and runs the clamp recurrence over a slice.
    let dt = 1.0 / (24.0 * 30.0);
    let cap = 27_791.0 / dt * 1.2;
    let arrivals: Vec<f64> = gauss.iter().map(|g| g.abs() * 1e4).collect();
    let t_step = time_median(1, sizes.reps, || {
        let mut q = FluidQueue::new(1e6, cap);
        let mut loss = 0.0;
        for &a in &arrivals {
            loss += q.step(a, dt);
        }
        std::hint::black_box(loss);
    });
    let t_block = time_median(1, sizes.reps, || {
        let mut q = FluidQueue::new(1e6, cap);
        let mut loss = 0.0;
        for chunk in arrivals.chunks(4096) {
            loss += q.step_block(chunk, dt);
        }
        std::hint::black_box(loss);
    });
    report.record_vs(
        "kernels_simd",
        "queue_scalar_step_vs_step_block",
        t_step,
        t_block,
        (1, sizes.reps),
        &format!(
            "{n}-slot FIFO recurrence; baseline calls step() per slot, block path \
             aggregates arrivals in vectorizable passes and runs the scalar clamp \
             recurrence over 4096-slot chunks"
        ),
    );
}

// ---------------------------------------------------------------------------
// Width-dispatch tier: the process-wide chunk width (vbr_fft::lanes)
// against the narrowest 2-lane monomorphisation of the same kernels, and
// the half-size-complex real FFT against the full-complex Hermitian
// synthesis it replaced. Outputs are bit-identical across all of these
// by construction (see DESIGN.md §14); only the wall clock differs.
// ---------------------------------------------------------------------------

fn bench_kernels_wide(sizes: &Sizes, report: &mut PerfReport) {
    let n = sizes.stream_n;
    let width = vbr_stats::simd::lanes();
    let wnote = if width == 2 {
        "detected width is 2, so both sides run the same code".to_string()
    } else {
        format!("dispatched width is {width}")
    };

    // AS241 quantile kernel: forced 2-lane chunks vs the dispatched width.
    let mut rng = Xoshiro256::seed_from_u64(21);
    let uniforms: Vec<f64> = (0..n).map(|_| rng.open01()).collect();
    let mut buf = vec![0.0f64; n];
    let t_w2 = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&uniforms);
        vbr_stats::special::norm_quantile_slice_w::<2>(&mut buf);
        std::hint::black_box(buf[n - 1]);
    });
    let t_disp = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&uniforms);
        vbr_stats::norm_quantile_slice(&mut buf);
        std::hint::black_box(buf[n - 1]);
    });
    report.record_vs(
        "kernels_wide",
        "norm_quantile_w2_vs_dispatched",
        t_w2,
        t_disp,
        (1, sizes.reps),
        &format!("{n} AS241 quantiles; baseline pins 2-lane chunks, {wnote}"),
    );

    // Arrival aggregation: the multiplexer's convert+add kernel.
    let src: Vec<u32> = (0..n).map(|i| (i as u32).wrapping_mul(2_654_435_761)).collect();
    let t_w2 = time_median(1, sizes.reps, || {
        buf.iter_mut().for_each(|x| *x = 0.0);
        vbr_stats::simd::accumulate_u32_w::<2>(&mut buf, &src);
        std::hint::black_box(buf[n - 1]);
    });
    let t_disp = time_median(1, sizes.reps, || {
        buf.iter_mut().for_each(|x| *x = 0.0);
        vbr_stats::simd::accumulate_u32(&mut buf, &src);
        std::hint::black_box(buf[n - 1]);
    });
    report.record_vs(
        "kernels_wide",
        "accumulate_u32_w2_vs_dispatched",
        t_w2,
        t_disp,
        (1, sizes.reps),
        &format!("{n} convert+add lanes; baseline pins 2-lane chunks, {wnote}"),
    );

    // Marginal slope-table map.
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
    let mut rng = Xoshiro256::seed_from_u64(22);
    let gauss: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    let t_w2 = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&gauss);
        xform.map_table_inplace_w::<2>(&mut buf);
        std::hint::black_box(buf[n - 1]);
    });
    let t_disp = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&gauss);
        xform.map_inplace(&mut buf);
        std::hint::black_box(buf[n - 1]);
    });
    report.record_vs(
        "kernels_wide",
        "marginal_table_w2_vs_dispatched",
        t_w2,
        t_disp,
        (1, sizes.reps),
        &format!("{n} slope-table lookups; baseline pins 2-lane chunks, {wnote}"),
    );

    // Hermitian synthesis — the Davies–Harte hot path: full-length
    // complex FFT over the mirrored spectrum (the pre-real-FFT code)
    // vs the half-size-complex RealFftPlan kernel.
    let fft_n = sizes.fft_n;
    let half = fft_n / 2;
    let mut rng = Xoshiro256::seed_from_u64(23);
    let mut half_spec: Vec<Complex> = (0..=half)
        .map(|_| Complex::new(rng.standard_normal(), rng.standard_normal()))
        .collect();
    half_spec[0] = Complex::from_re(half_spec[0].re);
    half_spec[half] = Complex::from_re(half_spec[half].re);
    let plan = vbr_fft::real_plan_for(fft_n);
    let mut full = vec![Complex::ZERO; fft_n];
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let t_full = time_median(1, sizes.reps, || {
        full[..=half].copy_from_slice(&half_spec);
        for k in 1..half {
            full[fft_n - k] = half_spec[k].conj();
        }
        fft_pow2_in_place(&mut full, Direction::Forward);
        out.clear();
        out.extend(full.iter().map(|c| c.re));
        std::hint::black_box(out[fft_n - 1]);
    });
    let t_half = time_median(1, sizes.reps, || {
        plan.synthesize_hermitian(&half_spec, &mut out, &mut scratch);
        std::hint::black_box(out[fft_n - 1]);
    });
    report.record_vs(
        "kernels_wide",
        "hermitian_synthesis_full_complex_vs_half",
        t_full,
        t_half,
        (1, sizes.reps),
        &format!(
            "n={fft_n} real samples from a Hermitian half-spectrum; baseline mirrors the \
             spectrum and runs a full-length complex FFT, new path folds into one \
             half-length transform (the Davies-Harte synthesis kernel)"
        ),
    );
}

/// The §16 lane-parallel batch kernels: l = lanes() sources per call,
/// lane-interleaved SoA, bit-identical per lane to the scalar plan.
/// Baselines run the same work as l scalar calls.
fn bench_kernels_batch_fft(sizes: &Sizes, report: &mut PerfReport) {
    let l = vbr_fft::lanes();
    // A fleet-shaped transform size: small enough that per-call
    // overhead matters, which is exactly what lane batching amortises.
    let n = (sizes.fft_n >> 4).max(16);
    let plan = vbr_fft::plan_for(n);
    let mut rng = Xoshiro256::seed_from_u64(31);
    let signals: Vec<Vec<Complex>> = (0..l)
        .map(|_| (0..n).map(|_| Complex::new(rng.standard_normal(), rng.standard_normal())).collect())
        .collect();
    let mut interleaved = vec![Complex::ZERO; n * l];
    for (v, sig) in signals.iter().enumerate() {
        for (j, &z) in sig.iter().enumerate() {
            interleaved[j * l + v] = z;
        }
    }
    let mut solo = vec![Complex::ZERO; n];
    let mut batch = vec![Complex::ZERO; n * l];
    let reps = sizes.reps * 4;
    let t_scalar = time_median(1, reps, || {
        for sig in &signals {
            solo.copy_from_slice(sig);
            plan.forward(&mut solo);
            std::hint::black_box(solo[n - 1]);
        }
    });
    let t_lanes = time_median(1, reps, || {
        batch.copy_from_slice(&interleaved);
        plan.forward_lanes(&mut batch, l);
        std::hint::black_box(batch[n * l - 1]);
    });
    report.record_vs(
        "kernels_batch_fft",
        "fft_scalar_loop_vs_lanes",
        t_scalar,
        t_lanes,
        (1, reps),
        &format!(
            "{l} forward transforms of n={n}; baseline loops the scalar radix-4 plan, \
             new path one lane-interleaved forward_lanes call (bits identical per lane)"
        ),
    );

    // The Davies-Harte hot kernel, fleet shape: l Hermitian syntheses.
    let half = n / 2;
    let rplan = vbr_fft::real_plan_for(n);
    let spectra: Vec<Vec<Complex>> = (0..l)
        .map(|_| {
            let mut hs: Vec<Complex> = (0..=half)
                .map(|_| Complex::new(rng.standard_normal(), rng.standard_normal()))
                .collect();
            hs[0] = Complex::from_re(hs[0].re);
            hs[half] = Complex::from_re(hs[half].re);
            hs
        })
        .collect();
    let mut half_il = vec![Complex::ZERO; (half + 1) * l];
    for (v, hs) in spectra.iter().enumerate() {
        for (k, &z) in hs.iter().enumerate() {
            half_il[k * l + v] = z;
        }
    }
    let (mut out, mut scratch) = (Vec::new(), Vec::new());
    let t_scalar = time_median(1, reps, || {
        for hs in &spectra {
            rplan.synthesize_hermitian(hs, &mut out, &mut scratch);
            std::hint::black_box(out[n - 1]);
        }
    });
    let (mut out_l, mut scratch_l) = (Vec::new(), Vec::new());
    let t_lanes = time_median(1, reps, || {
        rplan.synthesize_hermitian_lanes(&half_il, &mut out_l, &mut scratch_l, l);
        std::hint::black_box(out_l[n * l - 1]);
    });
    report.record_vs(
        "kernels_batch_fft",
        "hermitian_synthesis_scalar_loop_vs_lanes",
        t_scalar,
        t_lanes,
        (1, reps),
        &format!(
            "{l} Hermitian syntheses of n={n}; baseline loops the scalar kernel, \
             new path one synthesize_hermitian_lanes pass over interleaved bins"
        ),
    );

    // Split-radix audition: the DIF kernel owed by ROADMAP item 4
    // against the production radix-4 plan, same size, same data. The
    // radix-4 plan is the deliberate winner on this host (DESIGN.md
    // §16); this entry keeps the comparison honest under the gate so
    // a future host can re-audition split-radix with one bench run.
    let sr = vbr_fft::SplitRadixPlan::new(n);
    let t_sr = time_median(1, reps, || {
        for sig in &signals {
            solo.copy_from_slice(sig);
            sr.forward(&mut solo);
            std::hint::black_box(solo[n - 1]);
        }
    });
    let t_r4 = time_median(1, reps, || {
        for sig in &signals {
            solo.copy_from_slice(sig);
            plan.forward(&mut solo);
            std::hint::black_box(solo[n - 1]);
        }
    });
    report.record_vs(
        "kernels_batch_fft",
        "split_radix_vs_radix4",
        t_sr,
        t_r4,
        (1, reps),
        &format!(
            "{l} forward transforms of n={n}; baseline split-radix DIF recursion, \
             new path the production radix-4 SoA plan (measured winner on this host)"
        ),
    );
}

// ---------------------------------------------------------------------------
// Estimators tier
// ---------------------------------------------------------------------------

fn bench_estimators(sizes: &Sizes, report: &mut PerfReport) {
    let xs = DaviesHarte::new(0.8, 1.0).generate(sizes.whittle_n, 3);
    let pg = Periodogram::compute(&xs);

    // The golden-section search evaluates the objective ~200 times; time
    // that many evaluations the old way (powf + ln per frequency, every
    // evaluation) against the precomputed-table path.
    let d_grid: Vec<f64> = (0..200).map(|i| 0.001 + 0.498 * i as f64 / 199.0).collect();
    for model in [SpectralModel::Farima, SpectralModel::Fgn] {
        let t_direct = time_median(1, sizes.reps, || {
            let mut acc = 0.0;
            for &d in &d_grid {
                acc += whittle_objective_direct(&pg, model, d);
            }
            assert!(acc.is_finite());
        });
        let t_fast = time_median(1, sizes.reps, || {
            let obj = WhittleObjective::new(&pg, model);
            let mut acc = 0.0;
            for &d in &d_grid {
                acc += obj.eval(d);
            }
            assert!(acc.is_finite());
        });
        report.record_vs(
            "estimators",
            &format!("whittle_objective_{model:?}_direct_vs_fast").to_lowercase(),
            t_direct,
            t_fast,
            (1, sizes.reps),
            &format!(
                "200 objective evaluations (one search), n={}; fast path includes table build",
                sizes.whittle_n
            ),
        );
    }

    // Ensemble estimator dispatch. The old scheduler forked the worker
    // pool for every ensemble regardless of size; the recorded bench
    // showed that running 0.90x vs serial at n = 65536 (spawn/join tax
    // on millisecond-scale work). The baseline reproduces that dispatch
    // by pinning the pool to 4 workers (a pinned thread count bypasses
    // the work-size threshold); the new path lets `par_map_sized`
    // choose, which at this work size (4n < 2^19) is the serial lane.
    let ens_n = (sizes.hurst_n / 64).max(256);
    let hs = DaviesHarte::new(0.8, 1.0).generate(ens_n, 5);
    let t_forced = time_median(2, sizes.reps.max(9), || {
        with_threads(4, || {
            for _ in 0..4 {
                robust_hurst(&hs).expect("estimation");
            }
        });
    });
    let t_auto = time_median(2, sizes.reps.max(9), || {
        for _ in 0..4 {
            robust_hurst(&hs).expect("estimation");
        }
    });
    report.record_vs(
        "estimators",
        "robust_hurst_forced_parallel_vs_auto",
        t_forced,
        t_auto,
        (2, sizes.reps.max(9)),
        &format!(
            "4 calls, 4-member ensemble, n={ens_n}; baseline pins a 4-worker pool (the old \
             always-fork scheduler, one spawn/join per call), auto applies the \
             par_map_sized work threshold"
        ),
    );
}

// ---------------------------------------------------------------------------
// Simulation tier
// ---------------------------------------------------------------------------

fn bench_simulation(sizes: &Sizes, report: &mut PerfReport) {
    let trace = generate_screenplay(&ScreenplayConfig::short(sizes.trace_frames, 6));
    let n_sources = 3usize;
    let seed = 7u64;
    let sim = MuxSim::new(&trace, n_sources, seed);
    let cap = sim.mean_rate() * 1.2;
    let buffer = 0.002 * cap;
    let dt = sim.dt();
    let slots = trace.slice_bytes().len();
    let slots_per_sec = (1.0 / dt).round() as usize;

    // One mux experiment, set up and run once — the pre-streaming
    // pipeline materialized every combination's aggregate arrival
    // series at construction (6 x slots x 8 bytes) and then replayed
    // the vectors; the streaming path regenerates arrivals through
    // per-source wrap cursors in cache-sized chunks. Both sides include
    // construction (rate summaries) and one full run with the
    // worst-second bookkeeping, so the comparison is end to end.
    let min_sep = 1000.min(trace.frames() / (2 * n_sources));
    let t_materialized = time_median(1, sizes.reps, || {
        let combos = lag_combinations(n_sources, trace.frames(), min_sep, seed);
        let aggregates: Vec<Vec<f64>> =
            combos.iter().map(|c| aggregate_arrivals(&trace, c)).collect();
        // Rate summaries, as the old constructor derived them.
        let total0: f64 = aggregates[0].iter().sum();
        let mean = total0 / (slots as f64 * dt);
        let peak = aggregates
            .iter()
            .flat_map(|a| a.iter().copied())
            .fold(0.0f64, f64::max)
            / dt;
        std::hint::black_box((mean, peak));
        let mut p_l = 0.0;
        let mut p_wes = 0.0;
        for agg in &aggregates {
            let mut q = FluidQueue::new(buffer, cap);
            let mut worst = 0.0f64;
            let mut win_loss = 0.0;
            let mut win_arr = 0.0;
            for (i, &a) in agg.iter().enumerate() {
                win_loss += q.step(a, dt);
                win_arr += a;
                if (i + 1) % slots_per_sec == 0 || i + 1 == agg.len() {
                    if win_arr > 0.0 {
                        worst = worst.max(win_loss / win_arr);
                    }
                    win_loss = 0.0;
                    win_arr = 0.0;
                }
            }
            p_l += q.loss_rate();
            p_wes += worst;
        }
        std::hint::black_box((p_l, p_wes));
    });
    let t_streaming = time_median(1, sizes.reps, || {
        let s = MuxSim::new(&trace, n_sources, seed);
        std::hint::black_box(s.run(cap, buffer));
    });
    report.record_vs(
        "simulation",
        "mux_run_materialized_vs_streaming",
        t_materialized,
        t_streaming,
        (1, sizes.reps),
        &format!(
            "6 lag combinations x {slots} slots, construction + one run; baseline materializes \
             every aggregate series (pre-streaming MuxSim), new path streams wrap cursors"
        ),
    );

    // Small-batch screenplay generation: the regime where the recorded
    // bench showed the always-fork scheduler 0.88x vs serial. Baseline
    // forces the old dispatch through a pinned 4-worker pool; the new
    // path lets the work threshold route small batches serially.
    let small_frames = (sizes.trace_frames / 2000).max(10);
    let configs: Vec<ScreenplayConfig> =
        (0..4).map(|i| ScreenplayConfig::short(small_frames, 20 + i)).collect();
    generate_screenplay_batch(&configs); // warm spectrum caches
    let t_batch_forced = time_median(2, sizes.reps.max(9), || {
        with_threads(4, || {
            for _ in 0..8 {
                std::hint::black_box(generate_screenplay_batch(&configs));
            }
        });
    });
    let t_batch_auto = time_median(2, sizes.reps.max(9), || {
        for _ in 0..8 {
            std::hint::black_box(generate_screenplay_batch(&configs));
        }
    });
    report.record_vs(
        "simulation",
        "screenplay_batch_forced_parallel_vs_auto",
        t_batch_forced,
        t_batch_auto,
        (2, sizes.reps.max(9)),
        &format!(
            "8 batches of 4 sources x {small_frames} frames; baseline pins a 4-worker pool \
             (old always-fork scheduler), auto applies the par_map_sized work threshold"
        ),
    );
}

// ---------------------------------------------------------------------------
// Streaming tier
// ---------------------------------------------------------------------------

/// Long-trace generation: the batch pipeline vs the block-streaming
/// engine, one-shot. Every call uses a fresh Hurst value so both sides
/// pay their spectrum construction — the scenario the streaming engine
/// exists for is generating *one* long trace, not re-sampling a cached
/// model. The batch side builds (and FFTs) a `2n`-point circulant
/// embedding and holds the full Gaussian and traffic vectors; the
/// stream side windows the embedding at `2 x block` points and never
/// holds more than a block.
fn bench_streaming(sizes: &Sizes, report: &mut PerfReport) {
    let n = sizes.stream_n;
    let block = 1usize << 14;
    let chunk = 1usize << 13;
    // Paper-scale Gamma/Pareto marginal (Table 2 parameters).
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
    let dt = 1.0 / (24.0 * 30.0);
    // The batch side's wall time wobbles ±30% on a shared host (each
    // one-shot call allocates ~50 MiB of embedding and series buffers,
    // so page-fault pressure varies run to run); a warmed median over
    // several reps keeps the recorded ratio representative.
    let reps = sizes.reps.max(7);

    let mut h_step = 0u64;
    let mut fresh_h = move || {
        h_step += 1;
        0.8 + h_step as f64 * 1e-9
    };

    // Generate + marginal-transform only.
    let t_gen_batch = time_median(1, reps, || {
        let h = fresh_h();
        let gauss = DaviesHarte::new(h, 1.0).generate(n, 42);
        let traffic = xform.map_series(&gauss);
        std::hint::black_box(traffic.len());
    });
    let t_gen_stream = time_median(1, reps, || {
        let h = fresh_h();
        let mut src = FgnStream::new(h, 1.0, block, 42);
        let mut buf = vec![0.0f64; chunk];
        let mut acc = 0.0;
        let mut left = n;
        while left > 0 {
            let take = left.min(buf.len());
            xform.map_block_from(&mut src, &mut buf[..take]);
            acc += buf[take - 1];
            left -= take;
        }
        std::hint::black_box(acc);
    });
    report.record_vs(
        "streaming",
        "generate_marginal_batch_vs_stream",
        t_gen_batch,
        t_gen_stream,
        (1, reps),
        &format!(
            "one-shot fGn -> Gamma/Pareto traffic, n={n}, fresh (H, n) per call; baseline \
             builds a {}-point embedding and two n-vectors, stream windows {}-point \
             embeddings in {block}-sample blocks",
            2 * n,
            2 * block
        ),
    );

    // Full pipeline: generate -> marginal transform -> fluid queue.
    let t_e2e_batch = time_median(1, reps, || {
        let h = fresh_h();
        let gauss = DaviesHarte::new(h, 1.0).generate(n, 42);
        let traffic = xform.map_series(&gauss);
        let mut q = FluidQueue::new(1e6, 27_791.0 / dt * 1.2);
        for &a in &traffic {
            q.step(a, dt);
        }
        std::hint::black_box(q.loss_rate());
    });
    let t_e2e_stream = time_median(1, reps, || {
        let h = fresh_h();
        let mut src = FgnStream::new(h, 1.0, block, 42);
        let mut buf = vec![0.0f64; chunk];
        let mut q = FluidQueue::new(1e6, 27_791.0 / dt * 1.2);
        let mut left = n;
        while left > 0 {
            let take = left.min(buf.len());
            xform.map_block_from(&mut src, &mut buf[..take]);
            q.step_block(&buf[..take], dt);
            left -= take;
        }
        std::hint::black_box(q.loss_rate());
    });
    report.record_vs(
        "streaming",
        "pipeline_batch_vs_stream",
        t_e2e_batch,
        t_e2e_stream,
        (1, reps),
        &format!(
            "one-shot generate -> transform -> queue, n={n}, fresh (H, n) per call; stream \
             peak live state is one {block}-sample block + one {chunk}-sample chunk"
        ),
    );
}

// ---------------------------------------------------------------------------
// Batch-generation tier: B independent FgnStreams vs one BatchFgn over a
// shared spectrum. Draw sequences are bit-identical source for source
// (asserted below); what the batch buys is one circulant spectrum + one
// FFT plan + one scratch window for the whole fleet instead of per
// stream, which shows up as construction time and resident memory, not
// per-sample throughput.
// ---------------------------------------------------------------------------

fn bench_batch_fgn(sizes: &Sizes, report: &mut PerfReport) {
    let n_sources = 16usize;
    let block = 1usize << 12;
    let per_source = (sizes.stream_n / n_sources).max(block);
    let rounds = per_source / block;
    let seeds: Vec<u64> = (0..n_sources as u64).map(|i| 100 + i).collect();
    let reps = sizes.reps.max(7);

    // One-time bit-identity assertion so the timing below is provably
    // comparing equal work: batch source i == independent stream i.
    {
        let mut batch = BatchFgn::try_new(0.8, 1.0, block, &seeds).expect("valid params");
        let mut a = vec![0.0f64; block];
        let mut b = vec![0.0f64; block];
        for (i, &seed) in seeds.iter().enumerate() {
            let mut solo = FgnStream::new(0.8, 1.0, block, seed);
            batch.next_block(i, &mut a);
            solo.next_block(&mut b);
            assert_eq!(a, b, "batch source {i} diverged from its independent stream");
        }
    }

    // Fresh H per call so both sides pay spectrum construction — the
    // scenario batching exists for (spinning up a multiplexer's worth of
    // sources), not re-sampling a cached model.
    let mut h_step = 0u64;
    let mut fresh_h = move || {
        h_step += 1;
        0.8 + h_step as f64 * 1e-9
    };
    let mut buf = vec![0.0f64; block];
    let t_independent = time_median(1, reps, || {
        let h = fresh_h();
        let mut streams: Vec<FgnStream> =
            seeds.iter().map(|&s| FgnStream::new(h, 1.0, block, s)).collect();
        let mut acc = 0.0;
        for _ in 0..rounds {
            for s in streams.iter_mut() {
                s.next_block(&mut buf);
                acc += buf[block - 1];
            }
        }
        std::hint::black_box(acc);
    });
    let t_batch = time_median(1, reps, || {
        let h = fresh_h();
        let mut batch = BatchFgn::try_new(h, 1.0, block, &seeds).expect("valid params");
        let mut acc = 0.0;
        for _ in 0..rounds {
            for i in 0..n_sources {
                batch.next_block(i, &mut buf);
                acc += buf[block - 1];
            }
        }
        std::hint::black_box(acc);
    });
    report.record_vs(
        "batch_fgn",
        "independent_streams_vs_batch",
        t_independent,
        t_batch,
        (1, reps),
        &format!(
            "{n_sources} sources x {per_source} samples, fresh H per call, draws \
             bit-identical source for source; baseline holds {n_sources} FgnStreams \
             (spectrum Arc-shared via cache, per-stream scratch), batch shares one \
             spectrum + one scratch window"
        ),
    );
}

// ---------------------------------------------------------------------------
// Checkpoint tier
// ---------------------------------------------------------------------------

/// Durable-checkpoint overhead on the streaming pipeline: the same
/// generate → transform → queue loop with checkpointing off (baseline)
/// and on. Full mode uses the production cadence (one snapshot per
/// 1M slices over a 4M-slice run); test mode shrinks the run but keeps
/// four snapshots so the write path is exercised. The DESIGN.md §13
/// budget — and the CI `--ckpt-check` gate — is ≤5% overhead, i.e. a
/// speedup field of ≥0.95 here.
fn bench_checkpoint(sizes: &Sizes, report: &mut PerfReport) {
    let (n, every) = if sizes.stream_n >= (4 << 20) / 4 {
        (4usize << 20, 1u64 << 20)
    } else {
        (sizes.stream_n, (sizes.stream_n as u64 / 4).max(1))
    };
    let dir = std::env::temp_dir().join("vbr_ckpt_bench");
    std::fs::remove_dir_all(&dir).ok();
    let store = CheckpointStore::new(&dir).expect("temp checkpoint store");
    let reps = sizes.reps.max(7);
    let (t_off, t_on, _) = ckpt_paired_overhead(n, every, &store, 1, reps);
    std::fs::remove_dir_all(&dir).ok();
    report.record_vs(
        "checkpoint",
        "stream_pipeline_ckpt_off_vs_on",
        t_off,
        t_on,
        (1, reps),
        &format!(
            "streaming generate -> transform -> queue over {n} slices, {} durable \
             checkpoint(s) at a {every}-slice cadence (two-generation store, \
             fsync + rename per write); budget is <=5% overhead (speedup >= 0.95)",
            n as u64 / every
        ),
    );
}

// ---------------------------------------------------------------------------
// Fleet tier
// ---------------------------------------------------------------------------

/// A representative multi-tenant spec mix: three (H, variance) service
/// classes, so the fleet packs tenants into three batch groups per shard.
fn fleet_spec(t: u64, block: usize) -> TenantSpec {
    let (hurst, variance) = match t % 3 {
        0 => (0.8, 1.0),
        1 => (0.7, 1.5),
        _ => (0.55, 0.75),
    };
    TenantSpec {
        tenant: t,
        model: SourceModel::Fgn { hurst },
        variance,
        block,
        overlap: None,
        seed: t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF1EE7,
    }
}

/// Sharded fleet serving: admit `fleet_sources` tenants and advance them
/// in lockstep slice-slots. The baseline is the naive serving loop — the
/// same tenant set as independent solo `FgnStream`s, summed in admission
/// order. The fleet packs tenants sharing (model, H, variance, block)
/// into shared-spectrum batch groups and spreads groups across shards;
/// a second entry records the 1 → 4 shard lockstep time (the parallel
/// win on multi-core hosts). Both comparisons are construction-inclusive
/// — spinning the fleet up is part of the serving cost — and gated on a
/// one-time bit-identity check so the timings provably compare equal
/// work.
fn bench_fleet(sizes: &Sizes, report: &mut PerfReport) {
    let block = 16usize;
    let slots = 8usize;
    let n = sizes.fleet_sources;
    let reps = sizes.reps.max(5);
    let specs: Vec<TenantSpec> = (0..n as u64).map(|t| fleet_spec(t, block)).collect();

    let run_fleet = |shards: usize| -> u64 {
        let mut fleet = Fleet::new(FleetConfig::fixed(shards, block, usize::MAX));
        for s in &specs {
            fleet.admit(*s).expect("bench specs are valid and under capacity");
        }
        let mut slot = vec![0.0f64; block];
        let mut digest = TraceDigest::new();
        for _ in 0..slots {
            fleet.advance_slot(&mut slot);
            digest.update(&slot);
        }
        digest.value()
    };
    let run_solo = || -> u64 {
        let mut streams: Vec<FgnStream> = specs
            .iter()
            .map(|s| FgnStream::new(s.model.hurst(), s.variance, s.block, s.seed))
            .collect();
        let mut agg = vec![0.0f64; block];
        let mut buf = vec![0.0f64; block];
        let mut digest = TraceDigest::new();
        for _ in 0..slots {
            agg.fill(0.0);
            for s in streams.iter_mut() {
                s.next_block(&mut buf);
                for (a, &x) in agg.iter_mut().zip(&buf) {
                    *a += x;
                }
            }
            digest.update(&agg);
        }
        digest.value()
    };

    // One-time bit-identity assertion: the fleet's aggregate equals the
    // ordered solo sum at every shard count, so the timings below are
    // the same arrival sequence produced three ways.
    let want = run_solo();
    assert_eq!(run_fleet(1), want, "1-shard fleet diverged from the solo sum");
    assert_eq!(run_fleet(4), want, "4-shard fleet diverged from the solo sum");

    let t_solo = time_median(1, reps, || {
        std::hint::black_box(run_solo());
    });
    let t_fleet = time_median(1, reps, || {
        std::hint::black_box(run_fleet(4));
    });
    report.record_vs(
        "fleet",
        "solo_streams_vs_fleet",
        t_solo,
        t_fleet,
        (1, reps),
        &format!(
            "{n} tenants x {slots} lockstep slots of {block} slices, 3 service \
             classes; baseline holds {n} independent FgnStreams and sums in \
             admission order, fleet packs tenants into shared-spectrum batch \
             groups across 4 shards; aggregates verified bit-identical first"
        ),
    );

    let t_shard1 = time_median(1, reps, || {
        std::hint::black_box(run_fleet(1));
    });
    let t_shard4 = time_median(1, reps, || {
        std::hint::black_box(run_fleet(4));
    });
    report.record_vs(
        "fleet",
        "fleet_shard1_vs_shard4",
        t_shard1,
        t_shard4,
        (1, reps),
        &format!(
            "same {n}-tenant fleet advanced with 1 vs 4 shards (shards run on \
             the par worker pool; scaling shows on multi-core hosts, digest is \
             shard-count-invariant everywhere)"
        ),
    );
}

// ---------------------------------------------------------------------------
// Model zoo tier
// ---------------------------------------------------------------------------

/// Per-family generation throughput through the common [`TrafficModel`]
/// seam: fit the three-model zoo once from a screenplay reference, then
/// time each family producing `hurst_n` samples. No baseline — these
/// entries pin absolute generation cost per family so a fitting or
/// synthesis regression in any one model shows up in the gate.
fn bench_models(sizes: &Sizes, report: &mut PerfReport) {
    let n = sizes.hurst_n;
    let trace =
        generate_screenplay(&ScreenplayConfig::short(sizes.trace_frames, 7)).frame_series();
    let est = vbr_model::estimate_series(&trace, &vbr_model::EstimateOptions::default());
    let mut zoo = vbr_model::model_zoo(&trace, &est.params, 42);
    for model in zoo.iter_mut() {
        let name = model.name().replace('-', "_");
        let entry = model.snapshot(0);
        let t = time_median(1, sizes.reps, || {
            model.restore(&entry).expect("own snapshot restores");
            let xs = model.sample_series(n);
            std::hint::black_box(xs.len());
        });
        report.record(
            "models",
            &format!("generate_{name}"),
            t,
            (1, sizes.reps),
            &format!("{n} samples via sample_series, snapshot-restored to a fixed state first"),
        );
    }
}
