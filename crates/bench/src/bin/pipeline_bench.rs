//! End-to-end performance benchmark of the estimate → generate → queue
//! pipeline, plus the serial-vs-parallel determinism gate.
//!
//! Two modes:
//!
//! - **full** (default): paper-scale workloads; writes the machine-readable
//!   report to `BENCH_pipeline.json` (override with `--out <path>`).
//! - **`--test`**: CI smoke mode — small workloads, no report file unless
//!   `--out` is given. The determinism checks always run; any divergence
//!   between serial and parallel output exits nonzero.
//!
//! The baselines are honest re-implementations of the pre-optimisation
//! code paths (the drifting-twiddle FFT kernel, the `powf`-per-frequency
//! Whittle objective, cold-plan / cold-cache calls, `with_threads(1)`
//! runs), so every `speedup` field in the report is old-vs-new on the
//! same machine and workload.

use std::path::PathBuf;
use std::process::ExitCode;

use vbr_bench::perf::{time_median, PerfReport};
use vbr_bench::{Corruption, FaultInjector};
use vbr_fft::{fft_pow2_in_place, Complex, Direction, FftPlan};
use vbr_fgn::DaviesHarte;
use vbr_lrd::{
    robust_hurst, whittle_objective_direct, SpectralModel, WhittleObjective,
};
use vbr_qsim::{qc_curve, LossMetric, LossTarget, MuxSim};
use vbr_stats::par::{num_threads, with_threads};
use vbr_stats::periodogram::Periodogram;
use vbr_stats::rng::Xoshiro256;
use vbr_video::{generate_screenplay, generate_screenplay_batch, ScreenplayConfig};

/// Workload sizes for the two modes.
struct Sizes {
    fft_n: usize,
    whittle_n: usize,
    hurst_n: usize,
    trace_frames: usize,
    qc_grid: Vec<f64>,
    qc_iters: usize,
    reps: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            fft_n: 1 << 18,
            whittle_n: 1 << 16,
            hurst_n: 65_536,
            trace_frames: 20_000,
            qc_grid: vec![0.0005, 0.001, 0.002, 0.005, 0.01, 0.05],
            qc_iters: 14,
            reps: 5,
        }
    }

    fn test() -> Sizes {
        Sizes {
            fft_n: 1 << 12,
            whittle_n: 1 << 11,
            hurst_n: 4_096,
            trace_frames: 2_000,
            qc_grid: vec![0.001, 0.01],
            qc_iters: 6,
            reps: 2,
        }
    }
}

fn main() -> ExitCode {
    let mut test_mode = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test" => test_mode = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: pipeline_bench [--test] [--out <path>]");
                return ExitCode::from(2);
            }
        }
    }
    let sizes = if test_mode { Sizes::test() } else { Sizes::full() };
    let threads = num_threads();
    println!(
        "pipeline_bench: mode={}, worker threads={threads}",
        if test_mode { "test" } else { "full" }
    );

    let divergences = check_determinism(&sizes);
    if divergences > 0 {
        eprintln!("FAIL: {divergences} serial-vs-parallel divergence(s)");
        return ExitCode::FAILURE;
    }
    println!("determinism: parallel output bit-identical to serial (threads 1/2/{threads})");

    let mut report = PerfReport::new();
    bench_kernels(&sizes, &mut report);
    bench_estimators(&sizes, &mut report);
    bench_simulation(&sizes, &mut report);
    report.print_summary();

    let path = out.unwrap_or_else(|| PathBuf::from("BENCH_pipeline.json"));
    if !test_mode || path.as_os_str() != "BENCH_pipeline.json" {
        match report.write(&path, threads) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// Determinism gate
// ---------------------------------------------------------------------------

/// Runs every parallelized stage at 1, 2 and `num_threads()` workers and
/// counts stages whose output is not bit-identical across thread counts.
fn check_determinism(sizes: &Sizes) -> usize {
    let thread_grid = [1usize, 2, num_threads().max(4)];
    let mut divergences = 0;

    // Estimation: the full ensemble on a clean LRD series.
    let xs = DaviesHarte::new(0.8, 1.0).generate(sizes.hurst_n, 11);
    let hurst_sig = |t: usize| {
        with_threads(t, || {
            let r = robust_hurst(&xs).expect("clean series must estimate");
            let mut sig: Vec<u64> = r.estimates.iter().map(|&(_, h)| h.to_bits()).collect();
            sig.push(r.hurst.to_bits());
            sig
        })
    };
    divergences += compare_across("robust_hurst", &thread_grid, hurst_sig);

    // Estimation under injected faults: degraded output (including which
    // estimators failed) must not depend on the thread count.
    let inj = FaultInjector::new(99);
    let bad = inj.apply(&xs, Corruption::NegateRun);
    let fault_sig = |t: usize| {
        with_threads(t, || match robust_hurst(&bad) {
            Ok(r) => {
                let mut sig: Vec<String> =
                    r.estimates.iter().map(|(k, h)| format!("{k:?}:{:016x}", h.to_bits())).collect();
                sig.extend(r.failures.iter().map(|(k, e)| format!("{k:?}:{e:?}")));
                sig
            }
            Err(e) => vec![format!("err:{e:?}")],
        })
    };
    divergences += compare_across("robust_hurst_faulted", &thread_grid, fault_sig);

    // Generation: the multi-source screenplay batch.
    let configs = vec![
        ScreenplayConfig::short(sizes.trace_frames / 2, 1),
        ScreenplayConfig::short(sizes.trace_frames / 2, 2),
        ScreenplayConfig::short(sizes.trace_frames / 2, 3),
    ];
    let batch_sig = |t: usize| with_threads(t, || generate_screenplay_batch(&configs));
    divergences += compare_across("screenplay_batch", &thread_grid, batch_sig);

    // Queueing: MuxSim metrics and a Q-C sweep.
    let trace = generate_screenplay(&ScreenplayConfig::short(sizes.trace_frames, 4));
    let sim = MuxSim::new(&trace, 3, 5);
    let cap = sim.mean_rate() * 1.2;
    let run_sig = |t: usize| {
        with_threads(t, || {
            let l = sim.run(cap, 0.002 * cap);
            (l.p_l.to_bits(), l.p_wes.to_bits())
        })
    };
    divergences += compare_across("mux_run", &thread_grid, run_sig);

    let qc_sig = |t: usize| {
        with_threads(t, || {
            qc_curve(&sim, &sizes.qc_grid, LossTarget::Rate(1e-2), LossMetric::Overall, sizes.qc_iters)
                .iter()
                .map(|p| p.capacity_per_source.to_bits())
                .collect::<Vec<u64>>()
        })
    };
    divergences += compare_across("qc_curve", &thread_grid, qc_sig);

    divergences
}

/// Evaluates `f` at each thread count and reports whether all results match.
fn compare_across<T: PartialEq + std::fmt::Debug>(
    what: &str,
    grid: &[usize],
    f: impl Fn(usize) -> T,
) -> usize {
    let reference = f(grid[0]);
    for &t in &grid[1..] {
        let got = f(t);
        if got != reference {
            eprintln!("divergence in {what}: threads={} differs from threads={}", t, grid[0]);
            return 1;
        }
    }
    0
}

// ---------------------------------------------------------------------------
// Kernels tier
// ---------------------------------------------------------------------------

/// The pre-optimisation radix-2 kernel: twiddles accumulated by repeated
/// multiplication (`w *= wlen`) and recomputed on every call. Kept here
/// verbatim as the honest baseline for the plan-table kernel.
fn legacy_fft_pow2(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

fn bench_kernels(sizes: &Sizes, report: &mut PerfReport) {
    let n = sizes.fft_n;
    let mut rng = Xoshiro256::seed_from_u64(1);
    let input: Vec<Complex> =
        (0..n).map(|_| Complex::from_re(rng.standard_normal())).collect();

    // Legacy accumulating kernel vs the plan-table kernel (cache warm).
    let mut buf = input.clone();
    let t_legacy = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        legacy_fft_pow2(&mut buf, Direction::Forward);
    });
    let t_plan = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        fft_pow2_in_place(&mut buf, Direction::Forward);
    });
    report.record_vs(
        "kernels",
        "fft_legacy_vs_plan_table",
        t_legacy,
        t_plan,
        &format!("radix-2 forward FFT, n={n}; baseline recomputes twiddles by accumulation every call"),
    );

    // Cold plan construction vs the cached-plan hit for repeated sizes.
    let t_cold = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        let plan = FftPlan::new(n);
        plan.process(&mut buf, Direction::Forward);
    });
    let t_cached = time_median(1, sizes.reps, || {
        buf.copy_from_slice(&input);
        let plan = vbr_fft::plan_for(n);
        plan.process(&mut buf, Direction::Forward);
    });
    report.record_vs(
        "kernels",
        "fft_plan_cold_vs_cached",
        t_cold,
        t_cached,
        &format!("same-size repeated FFT, n={n}; baseline rebuilds bit-rev + twiddle tables per call"),
    );

    // Davies-Harte with a cold spectrum cache vs the memoized path.
    let gen_n = sizes.whittle_n;
    let mut h_step = 0u64;
    let t_cold_gen = time_median(1, sizes.reps, || {
        // A fresh H each call defeats the (H, m) memo key, forcing the
        // full ACVF + eigenvalue-FFT rebuild the cache normally skips.
        h_step += 1;
        let h = 0.8 + (h_step as f64) * 1e-12;
        DaviesHarte::new(h, 1.0).generate(gen_n, 7);
    });
    let warm = DaviesHarte::new(0.8, 1.0);
    warm.generate(gen_n, 7);
    let t_warm_gen = time_median(1, sizes.reps, || {
        warm.generate(gen_n, 7);
    });
    report.record_vs(
        "kernels",
        "davies_harte_cold_vs_memoized",
        t_cold_gen,
        t_warm_gen,
        &format!("fGn generation, n={gen_n}; baseline rebuilds the circulant spectrum every call"),
    );
}

// ---------------------------------------------------------------------------
// Estimators tier
// ---------------------------------------------------------------------------

fn bench_estimators(sizes: &Sizes, report: &mut PerfReport) {
    let xs = DaviesHarte::new(0.8, 1.0).generate(sizes.whittle_n, 3);
    let pg = Periodogram::compute(&xs);

    // The golden-section search evaluates the objective ~200 times; time
    // that many evaluations the old way (powf + ln per frequency, every
    // evaluation) against the precomputed-table path.
    let d_grid: Vec<f64> = (0..200).map(|i| 0.001 + 0.498 * i as f64 / 199.0).collect();
    for model in [SpectralModel::Farima, SpectralModel::Fgn] {
        let t_direct = time_median(1, sizes.reps, || {
            let mut acc = 0.0;
            for &d in &d_grid {
                acc += whittle_objective_direct(&pg, model, d);
            }
            assert!(acc.is_finite());
        });
        let t_fast = time_median(1, sizes.reps, || {
            let obj = WhittleObjective::new(&pg, model);
            let mut acc = 0.0;
            for &d in &d_grid {
                acc += obj.eval(d);
            }
            assert!(acc.is_finite());
        });
        report.record_vs(
            "estimators",
            &format!("whittle_objective_{model:?}_direct_vs_fast").to_lowercase(),
            t_direct,
            t_fast,
            &format!(
                "200 objective evaluations (one search), n={}; fast path includes table build",
                sizes.whittle_n
            ),
        );
    }

    // Ensemble estimator: serial vs worker pool.
    let hs = DaviesHarte::new(0.8, 1.0).generate(sizes.hurst_n, 5);
    let t_serial = time_median(0, sizes.reps, || {
        with_threads(1, || {
            robust_hurst(&hs).expect("estimation");
        });
    });
    let t_par = time_median(0, sizes.reps, || {
        robust_hurst(&hs).expect("estimation");
    });
    report.record_vs(
        "estimators",
        "robust_hurst_serial_vs_parallel",
        t_serial,
        t_par,
        &format!(
            "4-member ensemble, n={}; parallel at {} worker thread(s)",
            sizes.hurst_n,
            num_threads()
        ),
    );
}

// ---------------------------------------------------------------------------
// Simulation tier
// ---------------------------------------------------------------------------

fn bench_simulation(sizes: &Sizes, report: &mut PerfReport) {
    let trace = generate_screenplay(&ScreenplayConfig::short(sizes.trace_frames, 6));
    let sim = MuxSim::new(&trace, 3, 7);
    let cap = sim.mean_rate() * 1.2;

    let t_run_serial = time_median(0, sizes.reps, || {
        with_threads(1, || {
            sim.run(cap, 0.002 * cap);
        });
    });
    let t_run_par = time_median(0, sizes.reps, || {
        sim.run(cap, 0.002 * cap);
    });
    report.record_vs(
        "simulation",
        "mux_run_serial_vs_parallel",
        t_run_serial,
        t_run_par,
        &format!(
            "6 lag combinations x {} slots; parallel at {} worker thread(s)",
            trace.slice_bytes().len(),
            num_threads()
        ),
    );

    let t_qc_serial = time_median(0, 1.max(sizes.reps / 2), || {
        with_threads(1, || {
            qc_curve(&sim, &sizes.qc_grid, LossTarget::Rate(1e-2), LossMetric::Overall, sizes.qc_iters);
        });
    });
    let t_qc_par = time_median(0, 1.max(sizes.reps / 2), || {
        qc_curve(&sim, &sizes.qc_grid, LossTarget::Rate(1e-2), LossMetric::Overall, sizes.qc_iters);
    });
    report.record_vs(
        "simulation",
        "qc_sweep_serial_vs_parallel",
        t_qc_serial,
        t_qc_par,
        &format!(
            "{}-point T_max grid, {} bisection iterations each; parallel at {} worker thread(s)",
            sizes.qc_grid.len(),
            sizes.qc_iters,
            num_threads()
        ),
    );

    let configs: Vec<ScreenplayConfig> =
        (0..4).map(|i| ScreenplayConfig::short(sizes.trace_frames / 2, 20 + i)).collect();
    let t_batch_serial = time_median(0, 1.max(sizes.reps / 2), || {
        with_threads(1, || {
            generate_screenplay_batch(&configs);
        });
    });
    let t_batch_par = time_median(0, 1.max(sizes.reps / 2), || {
        generate_screenplay_batch(&configs);
    });
    report.record_vs(
        "simulation",
        "screenplay_batch_serial_vs_parallel",
        t_batch_serial,
        t_batch_par,
        &format!(
            "4 sources x {} frames; parallel at {} worker thread(s)",
            sizes.trace_frames / 2,
            num_threads()
        ),
    );
}
