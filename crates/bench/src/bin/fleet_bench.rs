//! Fleet-serving benchmark and smoke driver: how many concurrent
//! self-similar sources can one process sustain at slice granularity?
//!
//! Builds a `vbr_serve::Fleet` with a mixed-tenant population (three
//! (H, variance) classes, so batch packing has several groups to
//! amortise spectra and FFT plans across), advances it in lockstep
//! slots, digests the aggregate arrival sequence, and verifies from
//! `/proc/self/status` that peak resident memory stayed under a cap.
//! A million block-16 sources fit comfortably under the CI 768 MiB
//! address-space ulimit: each source's live state is O(block), and the
//! spectral machinery is shared per group, not per source.
//!
//! `--mode solo` runs the *reference*: every tenant as an independent
//! solo `FgnStream`, accumulated into the aggregate in admission order.
//! Its digest is bit-identical to `--mode fleet` by the fleet's
//! ordered-aggregation contract — CI diffs the two.
//!
//! `--scaling` sweeps shard counts (1, 2, 4, … up to `--shards`),
//! asserting every count produces the same digest and reporting
//! sources/sec and bytes/sec per count — the near-linear 1→N scaling
//! claim behind DESIGN.md §15.
//!
//! `--checkpoint-every N` persists the whole fleet through the
//! two-generation rotated `CheckpointStore`; `--resume` restores the
//! newest valid generation and continues bit-identically;
//! `--kill-after-slots N` aborts the process at a slot boundary for
//! crash drills (same KillPoint machinery as `stream_smoke`).
//!
//! Usage: `fleet_bench [--sources N] [--shards K] [--slots N]
//!   [--block B] [--cap-mib M] [--mode fleet|solo] [--digest]
//!   [--scaling] [--checkpoint-every N --checkpoint-dir <dir>]
//!   [--resume] [--kill-after-slots N]`

use std::process::ExitCode;
use std::time::Instant;

use vbr_bench::checkpoint::{CheckpointStore, Recovery, TraceDigest};
use vbr_bench::faults::KillPoint;
use vbr_fgn::FgnStream;
use vbr_serve::{Fleet, FleetConfig, SourceModel, TenantSpec};
use vbr_stats::obs::{self, Counter};
use vbr_stats::snapshot::{crc32, SnapshotError};

/// Checkpoint blob: a 12-byte digest prefix (running full-run digest +
/// its own CRC-32, so prefix corruption is a damaged generation, not a
/// silently wrong digest) followed by the self-contained fleet
/// snapshot. Lets a killed-and-resumed run finish with the *same* final
/// digest as the uninterrupted run — the contract `stream_smoke`
/// established and CI diffs.
fn encode_checkpoint(fleet: &Fleet, digest: &TraceDigest) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&digest.value().to_le_bytes());
    bytes.extend_from_slice(&crc32(&bytes[0..8]).to_le_bytes());
    bytes.extend(fleet.snapshot());
    bytes
}

fn decode_checkpoint(cfg: FleetConfig, bytes: &[u8]) -> Result<(u64, (u64, Fleet)), SnapshotError> {
    if bytes.len() < 12 {
        return Err(SnapshotError::Truncated { needed: 12, got: bytes.len() });
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let computed = crc32(&bytes[0..8]);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { what: "digest prefix", stored, computed });
    }
    let digest = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let fleet = Fleet::restore(cfg, &bytes[12..])?;
    Ok((fleet.slots_done(), (digest, fleet)))
}

fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The tenant population: three statistical classes cycled across ids,
/// seeds decorrelated by a splitmix-style multiply. Every mode and
/// every shard count sees exactly this population in this order.
fn spec_for(t: u64, block: usize) -> TenantSpec {
    let (hurst, variance) = match t % 3 {
        0 => (0.8, 1.0),
        1 => (0.7, 1.5),
        _ => (0.55, 0.75),
    };
    TenantSpec {
        tenant: t,
        model: SourceModel::Fgn { hurst },
        variance,
        block,
        overlap: None,
        seed: t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF1EE7,
    }
}

fn build_fleet(sources: usize, shards: usize, block: usize) -> Fleet {
    let mut fleet = Fleet::new(FleetConfig::fixed(shards, block, usize::MAX));
    for t in 0..sources as u64 {
        fleet.admit(spec_for(t, block)).expect("admission of a valid spec");
    }
    fleet
}

struct RunStats {
    digest: u64,
    secs: f64,
}

/// Advances `fleet` to `slots` total, digesting each aggregate slot;
/// handles the checkpoint cadence and the kill point.
#[allow(clippy::too_many_arguments)]
fn run_fleet(
    fleet: &mut Fleet,
    slots: u64,
    digest: &mut TraceDigest,
    store: Option<&CheckpointStore>,
    ckpt_every: u64,
    kill: &mut KillPoint,
) -> f64 {
    let block = fleet.config().slot_len;
    let mut agg = vec![0.0f64; block];
    let mut next_ckpt =
        if ckpt_every > 0 { fleet.slots_done() + ckpt_every } else { u64::MAX };
    let t0 = Instant::now();
    while fleet.slots_done() < slots {
        fleet.advance_slot(&mut agg);
        digest.update(&agg);
        if fleet.slots_done() >= next_ckpt {
            let store = store.expect("checkpoint cadence implies a store");
            match store.write_bytes(&encode_checkpoint(fleet, digest), fleet.slots_done()) {
                Ok(_) => {}
                Err(e) => eprintln!("fleet_bench: checkpoint write failed ({e}); continuing"),
            }
            next_ckpt = fleet.slots_done() + ckpt_every;
        }
        if kill.advance(1) {
            eprintln!(
                "fleet_bench: kill point reached at slot {}; aborting",
                fleet.slots_done()
            );
            std::process::abort();
        }
    }
    t0.elapsed().as_secs_f64()
}

/// The solo reference: every tenant as an independent stream, added
/// into the aggregate timeline in admission order — the fleet's
/// documented per-element addition order, hence the same bits.
fn run_solo(sources: usize, block: usize, slots: u64) -> RunStats {
    let n = slots as usize * block;
    let mut agg = vec![0.0f64; n];
    let mut buf = vec![0.0f64; n];
    let t0 = Instant::now();
    for t in 0..sources as u64 {
        let s = spec_for(t, block);
        let mut stream = FgnStream::try_new(s.model.hurst(), s.variance, s.block, s.seed)
            .expect("valid spec");
        for c in buf.chunks_mut(block) {
            stream.next_block(c);
        }
        for (a, &x) in agg.iter_mut().zip(&buf) {
            *a += x;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let mut digest = TraceDigest::new();
    for c in agg.chunks(block) {
        digest.update(c);
    }
    RunStats { digest: digest.value(), secs }
}

fn report(label: &str, sources: usize, block: usize, slots: u64, secs: f64) {
    let slices = sources as f64 * slots as f64 * block as f64;
    println!(
        "fleet_bench[{label}]: {sources} sources x {slots} slots x {block} = \
         {slices:.0} slices in {secs:.2} s ({:.2} Msources-slots/s, {:.1} MB/s aggregate input)",
        sources as f64 * slots as f64 / secs / 1e6,
        slices * 8.0 / secs / 1e6,
    );
}

fn main() -> ExitCode {
    let mut sources: usize = 100_000;
    let mut shards: usize = 4;
    let mut slots: u64 = 8;
    let mut block: usize = 16;
    let mut cap_mib: u64 = 768;
    let mut mode = String::from("fleet");
    let mut print_digest = false;
    let mut scaling = false;
    let mut ckpt_every: u64 = 0;
    let mut ckpt_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut kill_after: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sources" => {
                sources =
                    args.next().and_then(|v| v.parse().ok()).expect("--sources needs a count")
            }
            "--shards" => {
                shards = args.next().and_then(|v| v.parse().ok()).expect("--shards needs a count")
            }
            "--slots" => {
                slots = args.next().and_then(|v| v.parse().ok()).expect("--slots needs a count")
            }
            "--block" => {
                block = args.next().and_then(|v| v.parse().ok()).expect("--block needs a size")
            }
            "--cap-mib" => {
                cap_mib = args.next().and_then(|v| v.parse().ok()).expect("--cap-mib needs MiB")
            }
            "--mode" => mode = args.next().expect("--mode needs fleet|solo"),
            "--digest" => print_digest = true,
            "--scaling" => scaling = true,
            "--checkpoint-every" => {
                ckpt_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--checkpoint-every needs a slot count")
            }
            "--checkpoint-dir" => {
                ckpt_dir = Some(std::path::PathBuf::from(
                    args.next().expect("--checkpoint-dir needs a path"),
                ))
            }
            "--resume" => resume = true,
            "--kill-after-slots" => {
                kill_after = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--kill-after-slots needs a count"),
                )
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: fleet_bench [--sources N] [--shards K] [--slots N] [--block B] \
                     [--cap-mib M] [--mode fleet|solo] [--digest] [--scaling] \
                     [--checkpoint-every N --checkpoint-dir <dir>] [--resume] \
                     [--kill-after-slots N]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if (ckpt_every > 0 || resume) && ckpt_dir.is_none() {
        eprintln!("--checkpoint-every/--resume need --checkpoint-dir");
        return ExitCode::from(2);
    }

    let store = match &ckpt_dir {
        Some(dir) => match CheckpointStore::new(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot open checkpoint store {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let final_digest = if scaling {
        // Shard-count sweep: 1, 2, 4, … up to --shards. Bit-identical
        // digests across counts, near-linear throughput growth.
        let mut counts = Vec::new();
        let mut k = 1usize;
        while k <= shards {
            counts.push(k);
            k *= 2;
        }
        let mut baseline: Option<(u64, f64)> = None;
        for &k in &counts {
            let mut fleet = build_fleet(sources, k, block);
            let mut digest = TraceDigest::new();
            let mut kill = KillPoint::new(None);
            let secs = run_fleet(&mut fleet, slots, &mut digest, None, 0, &mut kill);
            report(&format!("{k} shard(s)"), sources, block, slots, secs);
            match baseline {
                None => baseline = Some((digest.value(), secs)),
                Some((want, base_secs)) => {
                    if digest.value() != want {
                        eprintln!(
                            "FAIL: {k}-shard digest {:#018x} != 1-shard digest {want:#018x}",
                            digest.value()
                        );
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "fleet_bench[scaling]: {k} shards speedup {:.2}x over 1 shard",
                        base_secs / secs
                    );
                }
            }
        }
        baseline.expect("at least one shard count ran").0
    } else if mode == "solo" {
        let stats = run_solo(sources, block, slots);
        report("solo", sources, block, slots, stats.secs);
        stats.digest
    } else if mode == "fleet" {
        let (mut fleet, mut digest) = if resume {
            let store = store.as_ref().expect("checked above");
            let cfg = FleetConfig::fixed(shards, block, usize::MAX);
            match store.recover_with(|bytes| decode_checkpoint(cfg, bytes)) {
                Recovery::Latest { seq, state: (d, f) } => {
                    println!("fleet_bench: resuming from checkpoint seq {seq}");
                    (f, TraceDigest::from_value(d))
                }
                Recovery::Previous { seq, state: (d, f), damaged } => {
                    eprintln!(
                        "fleet_bench: newest checkpoint damaged ({damaged} file(s)); \
                         falling back to generation seq {seq}"
                    );
                    (f, TraceDigest::from_value(d))
                }
                Recovery::ColdStart { damaged } => {
                    if damaged > 0 {
                        eprintln!("fleet_bench: all {damaged} checkpoint file(s) damaged; cold start");
                    } else {
                        println!("fleet_bench: no checkpoint found; cold start");
                    }
                    (build_fleet(sources, shards, block), TraceDigest::new())
                }
            }
        } else {
            let t0 = Instant::now();
            let fleet = build_fleet(sources, shards, block);
            println!(
                "fleet_bench: admitted {} sources into {} groups/shard avg in {:.2} s",
                fleet.sources(),
                fleet.shard_groups().iter().sum::<usize>() as f64 / shards as f64,
                t0.elapsed().as_secs_f64()
            );
            (fleet, TraceDigest::new())
        };
        if fleet.sources() != sources {
            eprintln!("FAIL: fleet holds {} sources, wanted {sources}", fleet.sources());
            return ExitCode::FAILURE;
        }
        let mut kill = KillPoint::new(kill_after);
        kill.advance(fleet.slots_done().min(kill_after.unwrap_or(u64::MAX).saturating_sub(1)));
        let secs =
            run_fleet(&mut fleet, slots, &mut digest, store.as_ref(), ckpt_every, &mut kill);
        report("fleet", sources, block, slots, secs);
        println!(
            "fleet_bench: slots {} slices {} admitted {} plan_cache_contention {}",
            obs::counter_value(Counter::FleetSlots),
            obs::counter_value(Counter::FleetSlices),
            obs::counter_value(Counter::FleetSourcesAdmitted),
            obs::counter_value(Counter::PlanCacheContention),
        );
        digest.value()
    } else {
        eprintln!("unknown --mode {mode} (want fleet|solo)");
        return ExitCode::from(2);
    };

    if print_digest {
        println!("fleet_bench: digest {final_digest:#018x}");
    }

    match vm_hwm_kib() {
        Some(kib) => {
            let cap_kib = cap_mib * 1024;
            println!(
                "fleet_bench: peak resident {:.1} MiB (cap {cap_mib} MiB)",
                kib as f64 / 1024.0
            );
            if kib > cap_kib {
                eprintln!("FAIL: VmHWM {kib} KiB exceeds cap {cap_kib} KiB");
                return ExitCode::FAILURE;
            }
        }
        None => println!("fleet_bench: /proc/self/status unavailable; skipping resident check"),
    }
    ExitCode::SUCCESS
}
