//! Bounded-memory smoke test for the streaming long-trace engine.
//!
//! Generates a 16M-slice (by default) self-similar VBR trace end to end
//! — block-streamed fGn, fused Gamma/Pareto marginal transform, fluid
//! queue — and then verifies from `/proc/self/status` that the process
//! peak resident set stayed under a cap. The batch pipeline cannot run
//! this workload at all: it would hold ~0.5 GiB of circulant embedding
//! plus two 128 MiB sample vectors, and its one-piece embedding is
//! numerically non-PSD at this length anyway (catastrophic cancellation
//! in the fGn autocovariance at ~10⁷-sample lags). The streaming engine
//! keeps every window's embedding small and well-conditioned, so its
//! live state is O(block).
//!
//! CI runs this under a `ulimit -v` address-space cap as a second,
//! kernel-enforced guard; the binary's own check is on VmHWM (peak
//! resident), which is the claim DESIGN.md §10 makes.
//!
//! Usage: `stream_smoke [--slices N] [--cap-mib M] [--trace-json <path>]`
//! Exit status: 0 on success, 1 on a memory-cap breach or an
//! implausible pipeline result. With `--trace-json` the
//! [`vbr_stats::obs`] collector records the run and the span tree plus
//! streaming counters (blocks emitted, seam cross-fades) are dumped as
//! JSON on exit.

use std::process::ExitCode;
use std::time::Instant;

use vbr_fgn::{FgnStream, MarginalTransform, TableMode};
use vbr_qsim::FluidQueue;
use vbr_stats::dist::GammaPareto;
use vbr_stats::obs;

/// Streaming block (fGn window) and consumer chunk sizes. The block
/// bounds the generator's live state; the chunk is the hand-off buffer
/// between the fused transform and the queue.
const BLOCK: usize = 1 << 14;
const CHUNK: usize = 1 << 13;

fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let mut slices: usize = 1 << 24;
    let mut cap_mib: u64 = 256;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--slices" => {
                slices = args.next().and_then(|v| v.parse().ok()).expect("--slices needs a count")
            }
            "--cap-mib" => {
                cap_mib = args.next().and_then(|v| v.parse().ok()).expect("--cap-mib needs MiB")
            }
            "--trace-json" => {
                trace_out =
                    Some(std::path::PathBuf::from(args.next().expect("--trace-json needs a path")))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: stream_smoke [--slices N] [--cap-mib M] [--trace-json <path>]");
                return ExitCode::from(2);
            }
        }
    }
    if trace_out.is_some() {
        obs::install_collector(1 << 12);
    }

    // Paper-scale model: H = 0.8 fGn under the Table 2 Gamma/Pareto
    // marginal, slots at 30 slices per 24 fps frame.
    let hurst = 0.8;
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
    let dt = 1.0 / (24.0 * 30.0);
    let capacity = 27_791.0 / dt * 1.2; // 20% headroom over the mean frame rate
    let buffer = 1e6;

    let t0 = Instant::now();
    let run_span = obs::span("stream_smoke.run");
    let mut src = FgnStream::new(hurst, 1.0, BLOCK, 42);
    let mut buf = vec![0.0f64; CHUNK];
    let mut q = FluidQueue::new(buffer, capacity);
    let mut total_bytes = 0.0f64;
    let mut left = slices;
    while left > 0 {
        let take = left.min(buf.len());
        xform.map_block_from(&mut src, &mut buf[..take]);
        for &a in &buf[..take] {
            total_bytes += a;
            q.step(a, dt);
        }
        left -= take;
    }
    drop(run_span);
    let secs = t0.elapsed().as_secs_f64();

    let mean_slice = total_bytes / slices as f64;
    let loss = q.loss_rate();
    println!(
        "stream_smoke: {slices} slices in {secs:.2} s ({:.1} Mslices/s), \
         mean slice {mean_slice:.0} bytes, loss rate {loss:.3e}",
        slices as f64 / secs / 1e6
    );

    // Sanity: the marginal mean must come out near the Gamma/Pareto
    // mean (slice level ~ mu), and the queue must have seen the load.
    if !(mean_slice.is_finite() && loss.is_finite() && mean_slice > 1_000.0) {
        eprintln!("FAIL: implausible pipeline output");
        return ExitCode::FAILURE;
    }

    match vm_hwm_kib() {
        Some(kib) => {
            let cap_kib = cap_mib * 1024;
            println!("stream_smoke: peak resident {:.1} MiB (cap {cap_mib} MiB)", kib as f64 / 1024.0);
            if kib > cap_kib {
                eprintln!("FAIL: VmHWM {kib} KiB exceeds cap {cap_kib} KiB");
                return ExitCode::FAILURE;
            }
        }
        None => println!("stream_smoke: /proc/self/status unavailable; skipping resident check"),
    }
    if let Some(tpath) = trace_out {
        let snap = obs::uninstall_collector().expect("collector was installed above");
        match std::fs::write(&tpath, obs::trace_json(&snap)) {
            Ok(()) => println!(
                "wrote {} ({} spans/events, {} dropped)",
                tpath.display(),
                snap.records.len(),
                snap.dropped
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", tpath.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
