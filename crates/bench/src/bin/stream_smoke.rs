//! Bounded-memory smoke test for the streaming long-trace engine.
//!
//! Generates a 16M-slice (by default) self-similar VBR trace end to end
//! — block-streamed fGn, fused Gamma/Pareto marginal transform, fluid
//! queue — and then verifies from `/proc/self/status` that the process
//! peak resident set stayed under a cap. The batch pipeline cannot run
//! this workload at all: it would hold ~0.5 GiB of circulant embedding
//! plus two 128 MiB sample vectors, and its one-piece embedding is
//! numerically non-PSD at this length anyway (catastrophic cancellation
//! in the fGn autocovariance at ~10⁷-sample lags). The streaming engine
//! keeps every window's embedding small and well-conditioned, so its
//! live state is O(block).
//!
//! CI runs this under a `ulimit -v` address-space cap as a second,
//! kernel-enforced guard; the binary's own check is on VmHWM (peak
//! resident), which is the claim DESIGN.md §10 makes.
//!
//! With `--checkpoint-every N` the run persists its full pipeline state
//! (stream seam + RNG, queue accounting, totals, trace digest) to a
//! two-generation rotated store every ~N slices; `--resume` restores the
//! newest valid checkpoint and continues **bit-identically** — the final
//! digest of a killed-and-resumed run equals the uninterrupted run's
//! (DESIGN.md §13). A damaged or mismatched checkpoint degrades to the
//! previous generation, then to a cold start with the
//! `checkpoint_fallbacks` alarm counter raised; it never panics.
//! `--kill-after-slices N` aborts the process (SIGKILL-equivalent: no
//! destructors, no atexit) once N slices have been emitted, for
//! deterministic crash drills.
//!
//! Usage: `stream_smoke [--slices N] [--cap-mib M] [--trace-json <path>]
//!   [--checkpoint-every N --checkpoint-dir <dir>] [--resume]
//!   [--kill-after-slices N] [--digest]`
//! Exit status: 0 on success, 1 on a memory-cap breach or an
//! implausible pipeline result.

use std::process::ExitCode;
use std::time::Instant;

use vbr_bench::checkpoint::{CheckpointStore, PipelineConfig, PipelineState, Recovery, TraceDigest};
use vbr_bench::faults::KillPoint;
use vbr_fgn::{FgnStream, MarginalTransform, TableMode};
use vbr_qsim::FluidQueue;
use vbr_stats::dist::GammaPareto;
use vbr_stats::obs::{self, Counter};

/// Streaming block (fGn window) and consumer chunk sizes. The block
/// bounds the generator's live state; the chunk is the hand-off buffer
/// between the fused transform and the queue.
const BLOCK: usize = 1 << 14;
const CHUNK: usize = 1 << 13;

fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let mut slices: usize = 1 << 24;
    let mut cap_mib: u64 = 256;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut ckpt_every: u64 = 0;
    let mut ckpt_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut kill_after: Option<u64> = None;
    let mut print_digest = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--slices" => {
                slices = args.next().and_then(|v| v.parse().ok()).expect("--slices needs a count")
            }
            "--cap-mib" => {
                cap_mib = args.next().and_then(|v| v.parse().ok()).expect("--cap-mib needs MiB")
            }
            "--trace-json" => {
                trace_out =
                    Some(std::path::PathBuf::from(args.next().expect("--trace-json needs a path")))
            }
            "--checkpoint-every" => {
                ckpt_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--checkpoint-every needs a slice count")
            }
            "--checkpoint-dir" => {
                ckpt_dir = Some(std::path::PathBuf::from(
                    args.next().expect("--checkpoint-dir needs a path"),
                ))
            }
            "--resume" => resume = true,
            "--kill-after-slices" => {
                kill_after = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--kill-after-slices needs a count"),
                )
            }
            "--digest" => print_digest = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: stream_smoke [--slices N] [--cap-mib M] [--trace-json <path>] \
                     [--checkpoint-every N --checkpoint-dir <dir>] [--resume] \
                     [--kill-after-slices N] [--digest]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if (ckpt_every > 0 || resume) && ckpt_dir.is_none() {
        eprintln!("--checkpoint-every/--resume need --checkpoint-dir");
        return ExitCode::from(2);
    }
    if trace_out.is_some() {
        obs::install_collector(1 << 12);
    }

    // Paper-scale model: H = 0.8 fGn under the Table 2 Gamma/Pareto
    // marginal, slots at 30 slices per 24 fps frame.
    let config = PipelineConfig {
        hurst: 0.8,
        variance: 1.0,
        block: BLOCK,
        overlap: None,
        table_n: 10_000,
        marginal: (27_791.0, 6_254.0, 9.0),
        dt: 1.0 / (24.0 * 30.0),
        capacity_bps: 27_791.0 / (1.0 / (24.0 * 30.0)) * 1.2, // 20% headroom over mean
        buffer_bytes: 1e6,
        seed: 42,
    };
    let param_hash = config.param_hash();
    let target = GammaPareto::from_params(config.marginal.0, config.marginal.1, config.marginal.2);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(config.table_n));
    let dt = config.dt;

    let store = match &ckpt_dir {
        Some(dir) => match CheckpointStore::new(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot open checkpoint store {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let t0 = Instant::now();
    let run_span = obs::span("stream_smoke.run");
    let mut src = FgnStream::new(config.hurst, config.variance, config.block, config.seed);
    let mut buf = vec![0.0f64; CHUNK];
    let mut q = FluidQueue::new(config.buffer_bytes, config.capacity_bps);
    let mut total_bytes = 0.0f64;
    let mut digest = TraceDigest::new();
    let mut done: u64 = 0;
    let mut seq: u64 = 0;

    // Restore: walk the degradation ladder, then graft the recovered
    // state onto the freshly built pipeline. A state that passes the
    // codec's CRCs but fails semantic validation (hostile bytes that
    // happen to checksum) degrades to a cold start — never a panic.
    if resume {
        let recovered = match store.as_ref().expect("checked above").recover(param_hash) {
            Recovery::Latest { seq: s, state } => {
                println!("stream_smoke: resuming from checkpoint seq {s}");
                Some((s, state))
            }
            Recovery::Previous { seq: s, state, damaged } => {
                eprintln!(
                    "stream_smoke: newest checkpoint damaged ({damaged} file(s)); \
                     falling back to generation seq {s}"
                );
                Some((s, state))
            }
            Recovery::ColdStart { damaged } => {
                if damaged > 0 {
                    eprintln!(
                        "stream_smoke: all {damaged} checkpoint file(s) damaged; cold start"
                    );
                } else {
                    println!("stream_smoke: no checkpoint found; cold start");
                }
                None
            }
        };
        if let Some((s, state)) = recovered {
            match graft(&mut src, &mut q, &state) {
                Ok(()) => {
                    total_bytes = state.total_bytes;
                    digest = TraceDigest::from_value(state.digest);
                    done = state.slices_done;
                    seq = s + 1;
                    obs::counter_restore(Counter::CheckpointWrites, state.checkpoint_writes);
                }
                Err(e) => {
                    eprintln!("stream_smoke: checkpoint state rejected ({e}); cold start");
                    obs::counter_add(Counter::CheckpointFallbacks, 1);
                    src = FgnStream::new(config.hurst, config.variance, config.block, config.seed);
                    q = FluidQueue::new(config.buffer_bytes, config.capacity_bps);
                }
            }
        }
    }

    let mut kill = KillPoint::new(kill_after);
    // Pre-credit the kill point with already-done work so a drill's
    // threshold means "total slices emitted", resumed or not.
    kill.advance(done.min(kill_after.unwrap_or(u64::MAX).saturating_sub(1)));
    let mut next_ckpt = if ckpt_every > 0 { done + ckpt_every } else { u64::MAX };

    while done < slices as u64 {
        let take = (slices as u64 - done).min(buf.len() as u64) as usize;
        xform.map_block_from(&mut src, &mut buf[..take]);
        digest.update(&buf[..take]);
        // Bit-identical to the per-sample loop this replaces:
        // sum_sequential keeps strict left-to-right accumulation, and
        // step_block runs the same clamp recurrence over the chunk.
        total_bytes += vbr_stats::simd::sum_sequential(&buf[..take]);
        q.step_block(&buf[..take], dt);
        done += take as u64;
        if done >= next_ckpt {
            let state = PipelineState {
                slices_done: done,
                total_bytes,
                digest: digest.value(),
                checkpoint_writes: obs::counter_value(Counter::CheckpointWrites) + 1,
                stream: src.export_state(),
                queue: q.export_state(),
            };
            if let Err(e) = store.as_ref().expect("cadence implies store").write(
                &state, param_hash, seq,
            ) {
                eprintln!("stream_smoke: checkpoint write failed ({e}); continuing");
            } else {
                seq += 1;
            }
            next_ckpt = done + ckpt_every;
        }
        if kill.advance(take as u64) {
            eprintln!("stream_smoke: kill point reached at {done} slices; aborting");
            std::process::abort();
        }
    }
    drop(run_span);
    let secs = t0.elapsed().as_secs_f64();

    let mean_slice = total_bytes / slices as f64;
    let loss = q.loss_rate();
    println!(
        "stream_smoke: {slices} slices in {secs:.2} s ({:.1} Mslices/s), \
         mean slice {mean_slice:.0} bytes, loss rate {loss:.3e}",
        slices as f64 / secs / 1e6
    );
    if print_digest {
        println!("stream_smoke: digest {:#018x}", digest.value());
    }

    // Sanity: the marginal mean must come out near the Gamma/Pareto
    // mean (slice level ~ mu), and the queue must have seen the load.
    if !(mean_slice.is_finite() && loss.is_finite() && mean_slice > 1_000.0) {
        eprintln!("FAIL: implausible pipeline output");
        return ExitCode::FAILURE;
    }

    match vm_hwm_kib() {
        Some(kib) => {
            let cap_kib = cap_mib * 1024;
            println!("stream_smoke: peak resident {:.1} MiB (cap {cap_mib} MiB)", kib as f64 / 1024.0);
            if kib > cap_kib {
                eprintln!("FAIL: VmHWM {kib} KiB exceeds cap {cap_kib} KiB");
                return ExitCode::FAILURE;
            }
        }
        None => println!("stream_smoke: /proc/self/status unavailable; skipping resident check"),
    }
    if let Some(tpath) = trace_out {
        let snap = obs::uninstall_collector().expect("collector was installed above");
        match std::fs::write(&tpath, obs::trace_json(&snap)) {
            Ok(()) => println!(
                "wrote {} ({} spans/events, {} dropped)",
                tpath.display(),
                snap.records.len(),
                snap.dropped
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", tpath.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Grafts a recovered pipeline state onto the live components. Any
/// rejection leaves both in their freshly-built condition (each
/// `restore_state` validates before mutating, and the stream is grafted
/// first), so the caller can fall back to a cold start.
fn graft(
    src: &mut FgnStream,
    q: &mut FluidQueue,
    state: &PipelineState,
) -> Result<(), vbr_stats::snapshot::SnapshotError> {
    src.restore_state(&state.stream)?;
    q.restore_state(&state.queue)?;
    Ok(())
}
