//! Prints a bit-level digest of every vectorised kernel's output on a
//! fixed workload, one `name digest` line per kernel.
//!
//! This is the cross-flag *and* cross-width portability gate: the
//! kernels are width-generic chunk loops dispatched once per process
//! (see DESIGN.md §14), written so the chunk width cannot change output
//! bits. CI builds this binary under default flags and
//! `target-cpu=native`, runs each build at every forced width
//! (`VBR_SIMD_WIDTH=2/4/8`) plus auto-detect, and diffs all outputs;
//! any difference means a kernel's arithmetic order leaked a build-flag
//! or lane-width dependence. The output deliberately contains no
//! width/feature banner — every line must be invariant.

use vbr_fft::{plan_for, real_plan_for, Complex, Direction};
use vbr_fgn::{BatchFgn, DaviesHarte, MarginalTransform, TableMode};
use vbr_qsim::FluidQueue;
use vbr_stats::dist::GammaPareto;
use vbr_stats::rng::Xoshiro256;
use vbr_stats::{norm_quantile_slice, simd};

/// FNV-1a over a stream of u64 words.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        const PRIME: u64 = 0x1_0000_01b3;
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    fn push_f64s(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x.to_bits());
        }
    }

    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

fn main() {
    let n = 1usize << 16;

    // Batch standard normals (uniform fill + blocked AS241 quantile).
    let mut rng = Xoshiro256::seed_from_u64(1);
    let mut normals = vec![0.0f64; n];
    rng.fill_standard_normal(&mut normals);
    let mut d = Digest::new();
    d.push_f64s(&normals);
    println!("fill_standard_normal {}", d.hex());

    // Blocked quantile kernel on a central + two-tail probability sweep.
    let mut ps: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
    for i in 0..64 {
        ps[i] = 10f64.powi(-(i as i32) / 4 - 1);
        ps[n - 1 - i] = 1.0 - 10f64.powi(-(i as i32) / 4 - 1);
    }
    norm_quantile_slice(&mut ps);
    let mut d = Digest::new();
    d.push_f64s(&ps);
    println!("norm_quantile_slice {}", d.hex());

    // Radix-4 SoA FFT, forward and inverse, even and odd log2 n.
    let mut d = Digest::new();
    for logn in [12u32, 13] {
        let m = 1usize << logn;
        let mut buf: Vec<Complex> = normals[..m].iter().map(|&x| Complex::from_re(x)).collect();
        for dir in [Direction::Forward, Direction::Inverse] {
            plan_for(m).process(&mut buf, dir);
            for z in &buf {
                d.push(z.re.to_bits());
                d.push(z.im.to_bits());
            }
        }
    }
    println!("fft_radix4 {}", d.hex());

    // Lane-parallel batched FFT at the dispatched lane count. The lane
    // kernels are bit-identical per lane to the scalar plan for every
    // `l`, so this digest must not move across forced widths even
    // though `lanes()` itself differs — the strongest single check of
    // the §16 lane contract.
    let l = vbr_fft::lanes();
    let mut d = Digest::new();
    for logn in [12u32, 13] {
        let m = 1usize << logn;
        let plan = plan_for(m);
        let mut interleaved = vec![Complex::ZERO; m * l];
        for v in 0..l {
            for j in 0..m {
                interleaved[j * l + v] = Complex::from_re(normals[(j + 97 * v) % n]);
            }
        }
        for dir in [Direction::Forward, Direction::Inverse] {
            match dir {
                Direction::Forward => plan.forward_lanes(&mut interleaved, l),
                Direction::Inverse => plan.inverse_lanes(&mut interleaved, l),
            }
            // Digest lane-major so the stream of words is independent
            // of `l`: lane v's bits are the scalar transform's bits.
            for v in 0..l.min(2) {
                for j in 0..m {
                    let z = interleaved[j * l + v];
                    d.push(z.re.to_bits());
                    d.push(z.im.to_bits());
                }
            }
        }
    }
    println!("batch_fft {}", d.hex());

    // Split-radix DIF kernel, scalar and lane paths, both directions.
    let mut d = Digest::new();
    for logn in [12u32, 13] {
        let m = 1usize << logn;
        let plan = vbr_fft::SplitRadixPlan::new(m);
        let mut buf: Vec<Complex> = normals[..m].iter().map(|&x| Complex::from_re(x)).collect();
        for dir in [Direction::Forward, Direction::Inverse] {
            plan.process(&mut buf, dir);
            for z in &buf {
                d.push(z.re.to_bits());
                d.push(z.im.to_bits());
            }
        }
        let mut interleaved = vec![Complex::ZERO; m * l];
        for v in 0..l {
            for j in 0..m {
                interleaved[j * l + v] = Complex::from_re(normals[(j + 53 * v) % n]);
            }
        }
        plan.forward_lanes(&mut interleaved, l);
        for v in 0..l.min(2) {
            for j in 0..m {
                let z = interleaved[j * l + v];
                d.push(z.re.to_bits());
                d.push(z.im.to_bits());
            }
        }
    }
    println!("split_radix {}", d.hex());

    // Half-size-complex real FFT: forward, Hermitian synthesis, and the
    // normalised inverse round trip, even and odd log2 n.
    let mut d = Digest::new();
    let mut spectrum = Vec::new();
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    for logn in [12u32, 13] {
        let m = 1usize << logn;
        let plan = real_plan_for(m);
        plan.forward(&normals[..m], &mut spectrum, &mut scratch);
        for z in &spectrum {
            d.push(z.re.to_bits());
            d.push(z.im.to_bits());
        }
        plan.synthesize_hermitian(&spectrum, &mut out, &mut scratch);
        d.push_f64s(&out);
        plan.inverse(&spectrum, &mut out, &mut scratch);
        d.push_f64s(&out);
    }
    println!("real_fft {}", d.hex());

    // Shared-spectrum batch generation: 3 sources' draws plus one
    // mid-stream export/restore into a fresh batch.
    let mut batch = BatchFgn::try_new(0.8, 1.0, 512, &[5, 6, 7]).expect("valid params");
    let mut d = Digest::new();
    let mut block = vec![0.0f64; 512];
    for _ in 0..3 {
        for src in 0..3 {
            batch.next_block(src, &mut block);
            d.push_f64s(&block);
        }
    }
    let saved = batch.export_state(1);
    let mut resumed = BatchFgn::try_new(0.8, 1.0, 512, &[5, 6, 7]).expect("valid params");
    resumed.restore_state(1, &saved).expect("own export restores");
    resumed.next_block(1, &mut block);
    d.push_f64s(&block);
    println!("batch_fgn {}", d.hex());

    // Gamma/Pareto marginal transform through the blocked table kernel,
    // fed by the batched Davies-Harte generator (whole pipeline bits).
    let gauss = DaviesHarte::new(0.8, 1.0).generate(n, 7);
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let xform = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
    let mut traffic = gauss;
    xform.map_inplace(&mut traffic);
    let mut d = Digest::new();
    d.push_f64s(&traffic);
    println!("marginal_table {}", d.hex());

    // FIFO block recurrence over the generated traffic.
    let dt = 1.0 / (24.0 * 30.0);
    let mut q = FluidQueue::new(1e6, 27_791.0 / dt * 1.05);
    let mut d = Digest::new();
    for chunk in traffic.chunks(4096) {
        d.push(q.step_block(chunk, dt).to_bits());
    }
    d.push(q.backlog().to_bits());
    d.push(q.arrived().to_bits());
    d.push(q.lost().to_bits());
    d.push(q.served().to_bits());
    println!("queue_step_block {}", d.hex());

    // SoA helper kernels.
    let words: Vec<u32> = normals.iter().map(|&x| x.to_bits() as u32).collect();
    let mut acc = vec![0.0f64; n];
    simd::accumulate_u32(&mut acc, &words);
    let mut scaled = vec![0.0f64; n];
    simd::scale_into(&mut scaled, &normals, std::f64::consts::PI);
    let mut d = Digest::new();
    d.push_f64s(&acc);
    d.push_f64s(&scaled);
    d.push(simd::sum_sequential(&normals).to_bits());
    println!("simd_helpers {}", d.hex());
}
