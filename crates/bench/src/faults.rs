//! Fault injection for the fallible pipeline.
//!
//! Each [`Corruption`] mode mimics a realistic data defect — an encoder
//! glitch emitting NaN, an overflowed counter reading as infinity, a
//! sign-flipped run, a stuck (constant) sensor, a truncated capture —
//! and [`FaultInjector`] applies it deterministically so the robustness
//! suite can assert that every stage of the estimation → generation →
//! queueing pipeline reports a typed error (or degrades gracefully)
//! instead of panicking or silently emitting non-finite traffic.

use vbr_stats::rng::Xoshiro256;

/// A data defect to inject into an otherwise healthy series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// One sample becomes NaN (arithmetic fault in the encoder).
    NanSpike,
    /// One sample becomes +∞ (overflowed byte counter).
    InfSpike,
    /// A contiguous run of samples is negated (sign corruption).
    NegateRun,
    /// The whole series collapses to its first value (stuck encoder —
    /// zero variance defeats every estimator).
    ZeroVarianceRun,
    /// Only the first few samples survive (truncated capture).
    Truncate,
}

impl Corruption {
    /// Every corruption mode, for exhaustive sweeps.
    pub const ALL: [Corruption; 5] = [
        Corruption::NanSpike,
        Corruption::InfSpike,
        Corruption::NegateRun,
        Corruption::ZeroVarianceRun,
        Corruption::Truncate,
    ];
}

/// Applies [`Corruption`] modes deterministically (seeded positions).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector; `seed` fixes every fault position.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// Returns a corrupted copy of `xs`. The input is never mutated, and
    /// an empty input stays empty.
    pub fn apply(&self, xs: &[f64], mode: Corruption) -> Vec<f64> {
        let mut out = xs.to_vec();
        if out.is_empty() {
            return out;
        }
        let mut rng = Xoshiro256::seed_from_u64(self.seed ^ mode as u64);
        let pick = |rng: &mut Xoshiro256, n: usize| rng.below(n as u64) as usize;
        match mode {
            Corruption::NanSpike => {
                let i = pick(&mut rng, out.len());
                out[i] = f64::NAN;
            }
            Corruption::InfSpike => {
                let i = pick(&mut rng, out.len());
                out[i] = f64::INFINITY;
            }
            Corruption::NegateRun => {
                let run = (out.len() / 20).max(1);
                let start = pick(&mut rng, out.len());
                let end = (start + run).min(out.len());
                for v in &mut out[start..end] {
                    // Map zeros below zero too, so the run is detectably bad.
                    *v = if *v == 0.0 { -1.0 } else { -*v };
                }
            }
            Corruption::ZeroVarianceRun => {
                let c = out[0];
                out.iter_mut().for_each(|v| *v = c);
            }
            Corruption::Truncate => {
                out.truncate(16.min(out.len()));
            }
        }
        out
    }

    /// The position seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a corrupted copy of a serialized snapshot (or any byte
    /// blob). Deterministic like [`apply`](Self::apply): the same seed
    /// and mode damage the same bytes. An empty input stays empty.
    pub fn apply_bytes(&self, bytes: &[u8], mode: FileCorruption) -> Vec<u8> {
        let mut out = bytes.to_vec();
        if out.is_empty() {
            return out;
        }
        let mut rng = Xoshiro256::seed_from_u64(self.seed ^ (0x100 + mode as u64));
        match mode {
            FileCorruption::Truncated => {
                // Cut somewhere strictly inside the file: a crash before
                // the tail of a non-atomic write ever hit the disk.
                let keep = rng.below(out.len() as u64) as usize;
                out.truncate(keep);
            }
            FileCorruption::TornTail => {
                // The file keeps its length but the last ~quarter was
                // never written: zero-filled sectors after a torn write.
                let torn = (out.len() / 4).max(1);
                let start = out.len() - torn;
                out[start..].fill(0);
            }
            FileCorruption::BitFlips => {
                // A few random single-bit flips (bad sector, bad RAM).
                for _ in 0..3 {
                    let i = rng.below(out.len() as u64) as usize;
                    let bit = rng.below(8) as u8;
                    out[i] ^= 1 << bit;
                }
            }
        }
        out
    }

    /// Corrupts a snapshot file on disk in place with `mode`. Used by
    /// the adversarial restore tests to simulate crash damage between a
    /// checkpoint write and the restart that reads it.
    pub fn corrupt_file(
        &self,
        path: &std::path::Path,
        mode: FileCorruption,
    ) -> std::io::Result<()> {
        let bytes = std::fs::read(path)?;
        std::fs::write(path, self.apply_bytes(&bytes, mode))
    }
}

/// A file-level defect on a serialized snapshot — what a crash, torn
/// write or failing medium does to checkpoint bytes, as opposed to the
/// sample-level [`Corruption`] modes that damage the data *inside* a
/// healthy file. Stale-generation damage (an old snapshot swapped over
/// a newer one) is exercised at the checkpoint-store level, where
/// generations exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileCorruption {
    /// The file ends early (crash mid-write without an atomic rename).
    Truncated,
    /// Full length but the tail reads back as zeros (torn sector write).
    TornTail,
    /// A handful of random single-bit flips (media/RAM corruption).
    BitFlips,
}

impl FileCorruption {
    /// Every file corruption mode, for exhaustive sweeps.
    pub const ALL: [FileCorruption; 3] = [
        FileCorruption::Truncated,
        FileCorruption::TornTail,
        FileCorruption::BitFlips,
    ];
}

/// A deterministic kill point for crash-recovery drills: arms at a unit
/// count (slices, blocks, bytes — caller's choice) and reports when
/// progress crosses it. The injector only *decides*; the caller pulls
/// the trigger (`std::process::abort()` for a SIGKILL-equivalent exit
/// that skips destructors and atexit hooks), which keeps the decision
/// logic testable in-process.
#[derive(Debug, Clone)]
pub struct KillPoint {
    after: Option<u64>,
    seen: u64,
    fired: bool,
}

impl KillPoint {
    /// Arms a kill point after `after` units; `None` never fires.
    pub fn new(after: Option<u64>) -> Self {
        KillPoint { after, seen: 0, fired: false }
    }

    /// Records `n` units of progress; returns `true` exactly once, the
    /// first time cumulative progress reaches the armed threshold.
    pub fn advance(&mut self, n: u64) -> bool {
        self.seen = self.seen.saturating_add(n);
        match self.after {
            Some(k) if !self.fired && self.seen >= k => {
                self.fired = true;
                true
            }
            _ => false,
        }
    }

    /// Units of progress recorded so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruptions_are_deterministic_and_nonempty() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() + 2.0).collect();
        let inj = FaultInjector::new(7);
        // Compare bit patterns: NaN != NaN would defeat a value compare.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for mode in Corruption::ALL {
            let a = inj.apply(&xs, mode);
            let b = inj.apply(&xs, mode);
            assert_eq!(bits(&a), bits(&b), "{mode:?} not deterministic");
            assert_ne!(bits(&a), bits(&xs), "{mode:?} must actually corrupt");
            assert!(!a.is_empty());
        }
        assert!(inj.apply(&[], Corruption::NanSpike).is_empty());
    }

    #[test]
    fn each_mode_produces_its_signature_defect() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).cos() + 2.0).collect();
        let inj = FaultInjector::new(3);
        assert!(inj
            .apply(&xs, Corruption::NanSpike)
            .iter()
            .any(|v| v.is_nan()));
        assert!(inj
            .apply(&xs, Corruption::InfSpike)
            .iter()
            .any(|v| v.is_infinite()));
        assert!(inj
            .apply(&xs, Corruption::NegateRun)
            .iter()
            .any(|&v| v < 0.0));
        let flat = inj.apply(&xs, Corruption::ZeroVarianceRun);
        assert!(flat.iter().all(|&v| v == flat[0]));
        assert_eq!(inj.apply(&xs, Corruption::Truncate).len(), 16);
    }

    #[test]
    fn file_corruptions_are_deterministic_and_damaging() {
        let blob: Vec<u8> = (0..2048u32).map(|i| (i.wrapping_mul(31) % 251) as u8 + 1).collect();
        let inj = FaultInjector::new(11);
        for mode in FileCorruption::ALL {
            let a = inj.apply_bytes(&blob, mode);
            let b = inj.apply_bytes(&blob, mode);
            assert_eq!(a, b, "{mode:?} not deterministic");
            assert_ne!(a, blob, "{mode:?} must actually corrupt");
        }
        assert!(inj.apply_bytes(&[], FileCorruption::BitFlips).is_empty());
    }

    #[test]
    fn file_corruption_signatures() {
        let blob = vec![0xAAu8; 1000];
        let inj = FaultInjector::new(5);
        assert!(inj.apply_bytes(&blob, FileCorruption::Truncated).len() < blob.len());
        let torn = inj.apply_bytes(&blob, FileCorruption::TornTail);
        assert_eq!(torn.len(), blob.len());
        assert_eq!(*torn.last().unwrap(), 0, "torn tail must read as zeros");
        let flipped = inj.apply_bytes(&blob, FileCorruption::BitFlips);
        assert_eq!(flipped.len(), blob.len());
        let diff_bits: u32 = blob
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!((1..=3).contains(&diff_bits), "expected ≤3 flipped bits, got {diff_bits}");
    }

    #[test]
    fn kill_point_fires_exactly_once_at_threshold() {
        let mut kp = KillPoint::new(Some(100));
        assert!(!kp.advance(60));
        assert!(!kp.advance(39)); // 99: one short
        assert!(kp.advance(1)); // crosses 100
        assert!(!kp.advance(500), "must not re-fire");
        assert_eq!(kp.seen(), 600);
        let mut disarmed = KillPoint::new(None);
        assert!(!disarmed.advance(u64::MAX));
        assert!(!disarmed.advance(u64::MAX), "saturating progress count");
    }

    #[test]
    fn corrupt_file_damages_on_disk_bytes() {
        let dir = std::env::temp_dir().join("vbr_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let blob: Vec<u8> = (0..512u32).map(|i| (i % 256) as u8).collect();
        std::fs::write(&path, &blob).unwrap();
        let inj = FaultInjector::new(9);
        inj.corrupt_file(&path, FileCorruption::BitFlips).unwrap();
        let damaged = std::fs::read(&path).unwrap();
        assert_eq!(damaged, inj.apply_bytes(&blob, FileCorruption::BitFlips));
        std::fs::remove_file(&path).ok();
    }
}
