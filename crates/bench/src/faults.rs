//! Fault injection for the fallible pipeline.
//!
//! Each [`Corruption`] mode mimics a realistic data defect — an encoder
//! glitch emitting NaN, an overflowed counter reading as infinity, a
//! sign-flipped run, a stuck (constant) sensor, a truncated capture —
//! and [`FaultInjector`] applies it deterministically so the robustness
//! suite can assert that every stage of the estimation → generation →
//! queueing pipeline reports a typed error (or degrades gracefully)
//! instead of panicking or silently emitting non-finite traffic.

use vbr_stats::rng::Xoshiro256;

/// A data defect to inject into an otherwise healthy series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// One sample becomes NaN (arithmetic fault in the encoder).
    NanSpike,
    /// One sample becomes +∞ (overflowed byte counter).
    InfSpike,
    /// A contiguous run of samples is negated (sign corruption).
    NegateRun,
    /// The whole series collapses to its first value (stuck encoder —
    /// zero variance defeats every estimator).
    ZeroVarianceRun,
    /// Only the first few samples survive (truncated capture).
    Truncate,
}

impl Corruption {
    /// Every corruption mode, for exhaustive sweeps.
    pub const ALL: [Corruption; 5] = [
        Corruption::NanSpike,
        Corruption::InfSpike,
        Corruption::NegateRun,
        Corruption::ZeroVarianceRun,
        Corruption::Truncate,
    ];
}

/// Applies [`Corruption`] modes deterministically (seeded positions).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector; `seed` fixes every fault position.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// Returns a corrupted copy of `xs`. The input is never mutated, and
    /// an empty input stays empty.
    pub fn apply(&self, xs: &[f64], mode: Corruption) -> Vec<f64> {
        let mut out = xs.to_vec();
        if out.is_empty() {
            return out;
        }
        let mut rng = Xoshiro256::seed_from_u64(self.seed ^ mode as u64);
        let pick = |rng: &mut Xoshiro256, n: usize| rng.below(n as u64) as usize;
        match mode {
            Corruption::NanSpike => {
                let i = pick(&mut rng, out.len());
                out[i] = f64::NAN;
            }
            Corruption::InfSpike => {
                let i = pick(&mut rng, out.len());
                out[i] = f64::INFINITY;
            }
            Corruption::NegateRun => {
                let run = (out.len() / 20).max(1);
                let start = pick(&mut rng, out.len());
                let end = (start + run).min(out.len());
                for v in &mut out[start..end] {
                    // Map zeros below zero too, so the run is detectably bad.
                    *v = if *v == 0.0 { -1.0 } else { -*v };
                }
            }
            Corruption::ZeroVarianceRun => {
                let c = out[0];
                out.iter_mut().for_each(|v| *v = c);
            }
            Corruption::Truncate => {
                out.truncate(16.min(out.len()));
            }
        }
        out
    }

    /// The position seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruptions_are_deterministic_and_nonempty() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() + 2.0).collect();
        let inj = FaultInjector::new(7);
        // Compare bit patterns: NaN != NaN would defeat a value compare.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for mode in Corruption::ALL {
            let a = inj.apply(&xs, mode);
            let b = inj.apply(&xs, mode);
            assert_eq!(bits(&a), bits(&b), "{mode:?} not deterministic");
            assert_ne!(bits(&a), bits(&xs), "{mode:?} must actually corrupt");
            assert!(!a.is_empty());
        }
        assert!(inj.apply(&[], Corruption::NanSpike).is_empty());
    }

    #[test]
    fn each_mode_produces_its_signature_defect() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).cos() + 2.0).collect();
        let inj = FaultInjector::new(3);
        assert!(inj
            .apply(&xs, Corruption::NanSpike)
            .iter()
            .any(|v| v.is_nan()));
        assert!(inj
            .apply(&xs, Corruption::InfSpike)
            .iter()
            .any(|v| v.is_infinite()));
        assert!(inj
            .apply(&xs, Corruption::NegateRun)
            .iter()
            .any(|&v| v < 0.0));
        let flat = inj.apply(&xs, Corruption::ZeroVarianceRun);
        assert!(flat.iter().all(|&v| v == flat[0]));
        assert_eq!(inj.apply(&xs, Corruption::Truncate).len(), 16);
    }
}
