//! Durable checkpoint/restore for the streaming pipeline (DESIGN.md §13).
//!
//! A checkpoint captures the *dynamic* state of the generate → transform
//! → queue pipeline — stream seam, RNG, queue accounting, running totals
//! and the trace digest — keyed by a hash of the *static* configuration.
//! Restore rebuilds the pipeline from configuration, verifies the hash,
//! and grafts the state back so the resumed run is bit-identical to one
//! that was never interrupted.
//!
//! Durability model: each checkpoint is written to a temp file, fsynced,
//! and renamed over the older of two generation slots. A crash therefore
//! leaves at most one damaged generation; the degradation ladder at
//! restore time is
//!
//! 1. newest valid generation → [`Recovery::Latest`];
//! 2. newest damaged, previous valid → [`Recovery::Previous`]
//!    (raises [`Counter::CheckpointFallbacks`] — the alarm);
//! 3. nothing valid → [`Recovery::ColdStart`] (alarmed only when
//!    damaged files were present — a first run has nothing to restore).
//!
//! Hostile bytes (truncation, torn writes, bit flips, stale swaps) are
//! rejected by the snapshot codec's CRCs and the per-field validation in
//! each component's `restore_state`; no corruption mode can panic the
//! restore path.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use vbr_fgn::StreamState;
use vbr_qsim::QueueState;
use vbr_stats::obs::{self, Counter};
use vbr_stats::snapshot::{ParamHasher, SnapshotError, SnapshotReader, SnapshotWriter};

/// Section tags inside a pipeline snapshot (arbitrary but fixed).
const TAG_META: u32 = 0x4D45_5441; // "META"
const TAG_STREAM: u32 = 0x5354_524D; // "STRM"
const TAG_QUEUE: u32 = 0x5155_4555; // "QUEU"

/// The static configuration of the streaming pipeline — everything the
/// restore target is rebuilt from, and therefore everything the
/// parameter hash must cover. Restoring a snapshot against a config
/// with a different hash is a typed error, never a silent graft.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Hurst parameter of the fGn source.
    pub hurst: f64,
    /// Marginal variance of the Gaussian source.
    pub variance: f64,
    /// Streaming block size in samples.
    pub block: usize,
    /// Seam overlap in samples (`None` = the stream's default).
    pub overlap: Option<usize>,
    /// Lookup-table resolution of the marginal transform (0 = exact).
    pub table_n: usize,
    /// Gamma/Pareto marginal parameters (mean, sd, Pareto shape).
    pub marginal: (f64, f64, f64),
    /// Slot duration in seconds.
    pub dt: f64,
    /// Queue service capacity in bytes per second.
    pub capacity_bps: f64,
    /// Queue buffer in bytes.
    pub buffer_bytes: f64,
    /// Generator seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// FNV-1a hash over every parameter, stored in snapshot headers and
    /// re-derived at restore time to refuse mismatched configurations.
    pub fn param_hash(&self) -> u64 {
        let mut h = ParamHasher::new()
            .str("vbr-pipeline/v1")
            .f64(self.hurst)
            .f64(self.variance)
            .usize(self.block);
        h = match self.overlap {
            Some(o) => h.u64(1).usize(o),
            None => h.u64(0),
        };
        h.usize(self.table_n)
            .f64(self.marginal.0)
            .f64(self.marginal.1)
            .f64(self.marginal.2)
            .f64(self.dt)
            .f64(self.capacity_bps)
            .f64(self.buffer_bytes)
            .u64(self.seed)
            .finish()
    }
}

/// Running FNV-1a digest over emitted slice values (their raw IEEE-754
/// bits). Each sample folds in as one `u64` word — one
/// xor and one multiply per sample instead of eight, which matters when
/// the digest shadows a 25 Mslices/s stream. Digests are only ever
/// compared between runs of the same build (resume drills, width/shard
/// sweeps), so the word-wise variant is as good an identity witness as
/// the byte-wise one. Carried inside every checkpoint so a resumed
/// run's final digest covers *all* slices — including those emitted by
/// the process that died — and must equal the uninterrupted run's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    h: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl TraceDigest {
    /// Fresh digest (FNV offset basis).
    pub fn new() -> Self {
        TraceDigest { h: FNV_OFFSET }
    }

    /// Resumes a digest from a value carried in a checkpoint.
    pub fn from_value(h: u64) -> Self {
        TraceDigest { h }
    }

    /// Folds a block of emitted slices into the digest.
    pub fn update(&mut self, xs: &[f64]) {
        let mut h = self.h;
        for &x in xs {
            h ^= x.to_bits();
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.h = h;
    }

    /// Current digest value.
    pub fn value(&self) -> u64 {
        self.h
    }
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything the pipeline mutates while running: progress, totals, the
/// trace digest, and the component states (stream seam + RNG, queue
/// accounting). Serialized with the vbr-stats snapshot codec; all
/// floats round-trip as raw bits.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineState {
    /// Slices fully processed (generated, transformed, queued).
    pub slices_done: u64,
    /// Total bytes offered to the queue so far.
    pub total_bytes: f64,
    /// Running [`TraceDigest`] value over the emitted slices.
    pub digest: u64,
    /// `CheckpointWrites` counter value at snapshot time, so a resumed
    /// run's observability totals match an uninterrupted run's.
    pub checkpoint_writes: u64,
    /// fGn/F-ARIMA stream state.
    pub stream: StreamState,
    /// Fluid queue state.
    pub queue: QueueState,
}

impl PipelineState {
    /// Serializes the state into a standalone snapshot blob with the
    /// given parameter hash and sequence number.
    pub fn encode(&self, param_hash: u64, seq: u64) -> Vec<u8> {
        let mut w = SnapshotWriter::new(param_hash, seq);
        w.section(TAG_META, |p| {
            p.put_u64(self.slices_done);
            p.put_f64(self.total_bytes);
            p.put_u64(self.digest);
            p.put_u64(self.checkpoint_writes);
        });
        w.section(TAG_STREAM, |p| self.stream.encode(p));
        w.section(TAG_QUEUE, |p| self.queue.encode(p));
        w.finish()
    }

    /// Decodes a snapshot blob, verifying the magic, codec version,
    /// whole-file CRC, per-section CRCs, and the parameter hash against
    /// `param_hash`. Returns the snapshot's sequence number alongside
    /// the state. Structural validation only — grafting the parts onto
    /// live components applies their own semantic checks.
    pub fn decode(bytes: &[u8], param_hash: u64) -> Result<(u64, Self), SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        r.require_param_hash(param_hash)?;
        let seq = r.seq();

        let mut s = r.section(TAG_META, "pipeline meta")?;
        let slices_done = s.get_u64()?;
        let total_bytes = s.get_f64()?;
        let digest = s.get_u64()?;
        let checkpoint_writes = s.get_u64()?;
        s.finish()?;

        let mut s = r.section(TAG_STREAM, "stream state")?;
        let stream = StreamState::decode(&mut s)?;
        s.finish()?;

        let mut s = r.section(TAG_QUEUE, "queue state")?;
        let queue = QueueState::decode(&mut s)?;
        s.finish()?;

        if !total_bytes.is_finite() || total_bytes < 0.0 {
            return Err(SnapshotError::Invalid { what: "total_bytes" });
        }
        Ok((seq, PipelineState { slices_done, total_bytes, digest, checkpoint_writes, stream, queue }))
    }
}

/// What a restore attempt resolved to — the rungs of the degradation
/// ladder. Never an error and never a panic: the worst outcome of any
/// corruption is a cold start with the alarm counter raised.
///
/// Generic over the decoded state so the same ladder serves the
/// single-stream pipeline ([`PipelineState`], the default) and the
/// fleet-serving snapshots (see [`CheckpointStore::recover_with`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Recovery<T = PipelineState> {
    /// The newest generation restored cleanly.
    Latest {
        /// Snapshot sequence number.
        seq: u64,
        /// The decoded state.
        state: T,
    },
    /// The newest generation was damaged; the previous one restored.
    /// [`Counter::CheckpointFallbacks`] has been raised.
    Previous {
        /// Snapshot sequence number of the surviving generation.
        seq: u64,
        /// The decoded state.
        state: T,
        /// Generation files that existed but failed validation.
        damaged: usize,
    },
    /// Nothing restorable. `damaged == 0` means a genuinely fresh start
    /// (no checkpoint files at all); `damaged > 0` means every existing
    /// generation failed validation and the alarm has been raised.
    ColdStart {
        /// Generation files that existed but failed validation.
        damaged: usize,
    },
}

/// A two-generation rotated checkpoint store in a directory.
///
/// Writes are atomic (temp file + fsync + rename) and alternate between
/// two slots keyed by snapshot sequence parity, so the previous
/// generation is never overwritten in place and always survives a crash
/// mid-write.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// Generation slot file names (sequence parity picks the slot).
const GEN_FILES: [&str; 2] = ["ckpt_even.bin", "ckpt_odd.bin"];

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The slot file a snapshot with sequence `seq` lands in.
    pub fn generation_path(&self, seq: u64) -> PathBuf {
        self.dir.join(GEN_FILES[(seq % 2) as usize])
    }

    /// Atomically persists a checkpoint: encode, write to a temp file,
    /// fsync, rename over the older generation slot. Raises
    /// [`Counter::CheckpointWrites`] on success.
    pub fn write(&self, state: &PipelineState, param_hash: u64, seq: u64) -> io::Result<PathBuf> {
        self.write_bytes(&state.encode(param_hash, seq), seq)
    }

    /// [`write`](Self::write) for an already-encoded snapshot blob —
    /// the entry point for non-pipeline payloads (fleet/shard snapshots)
    /// that bring their own codec. Same durability: temp file, fsync,
    /// rename over the generation slot picked by `seq` parity.
    pub fn write_bytes(&self, bytes: &[u8], seq: u64) -> io::Result<PathBuf> {
        let tmp = self.dir.join(".ckpt.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        let dst = self.generation_path(seq);
        fs::rename(&tmp, &dst)?;
        obs::counter_add(Counter::CheckpointWrites, 1);
        Ok(dst)
    }

    /// Walks the degradation ladder: decode every generation slot that
    /// exists, take the highest valid sequence, and classify the
    /// outcome. Damaged slots (unreadable, truncated, corrupt, or
    /// written under a different configuration) are counted, never
    /// fatal. Raises [`Counter::CheckpointResumes`] when a state is
    /// recovered and [`Counter::CheckpointFallbacks`] whenever damage
    /// forced a rung down the ladder.
    pub fn recover(&self, param_hash: u64) -> Recovery {
        self.recover_with(|bytes| PipelineState::decode(bytes, param_hash))
    }

    /// The degradation ladder for any snapshot payload: `decode` turns a
    /// generation file's bytes into `(seq, state)` or a typed error
    /// (which marks the slot damaged). The [`recover`](Self::recover)
    /// semantics — highest valid sequence wins, damage counted, resume
    /// and fallback counters raised — apply unchanged, so the fleet's
    /// shard snapshots get the same never-panic guarantees as the
    /// pipeline's.
    pub fn recover_with<T>(
        &self,
        decode: impl Fn(&[u8]) -> Result<(u64, T), SnapshotError>,
    ) -> Recovery<T> {
        let mut best: Option<(u64, T)> = None;
        let mut damaged = 0usize;
        for name in GEN_FILES {
            let path = self.dir.join(name);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(_) => {
                    damaged += 1;
                    continue;
                }
            };
            match decode(&bytes) {
                Ok((seq, state)) => {
                    if best.as_ref().is_none_or(|(s, _)| seq > *s) {
                        best = Some((seq, state));
                    }
                }
                Err(_) => damaged += 1,
            }
        }
        match best {
            Some((seq, state)) => {
                obs::counter_add(Counter::CheckpointResumes, 1);
                if damaged > 0 {
                    obs::counter_add(Counter::CheckpointFallbacks, 1);
                    Recovery::Previous { seq, state, damaged }
                } else {
                    Recovery::Latest { seq, state }
                }
            }
            None => {
                if damaged > 0 {
                    obs::counter_add(Counter::CheckpointFallbacks, 1);
                }
                Recovery::ColdStart { damaged }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_state(slices_done: u64) -> PipelineState {
        PipelineState {
            slices_done,
            total_bytes: slices_done as f64 * 100.0,
            digest: 0xDEAD ^ slices_done,
            checkpoint_writes: slices_done / 10,
            stream: StreamState {
                rng: [1, 2, 3, slices_done + 1],
                cur: vec![0.5, -1.5],
                tail: vec![],
                pos: 1,
                started: true,
                tenant: 0,
            },
            queue: QueueState { backlog: 5.0, arrived: 20.0, lost: 0.0, served: 15.0 },
        }
    }

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("vbr_ckpt_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointStore::new(dir).unwrap()
    }

    #[test]
    fn param_hash_distinguishes_configs() {
        let base = PipelineConfig {
            hurst: 0.8,
            variance: 1.0,
            block: 1 << 14,
            overlap: None,
            table_n: 10_000,
            marginal: (27_791.0, 6_254.0, 9.0),
            dt: 1.0 / 720.0,
            capacity_bps: 2.4e10,
            buffer_bytes: 1e6,
            seed: 42,
        };
        let h0 = base.param_hash();
        assert_eq!(h0, base.param_hash(), "hash must be stable");
        for variant in [
            PipelineConfig { hurst: 0.7, ..base.clone() },
            PipelineConfig { block: 1 << 13, ..base.clone() },
            PipelineConfig { overlap: Some(0), ..base.clone() },
            PipelineConfig { seed: 43, ..base.clone() },
            PipelineConfig { marginal: (27_791.0, 6_254.0, 8.0), ..base.clone() },
        ] {
            assert_ne!(h0, variant.param_hash(), "{variant:?}");
        }
    }

    #[test]
    fn pipeline_state_round_trips() {
        let st = toy_state(1234);
        let bytes = st.encode(0xABCDEF, 7);
        let (seq, got) = PipelineState::decode(&bytes, 0xABCDEF).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(got, st);
        // Wrong parameter hash is a typed refusal.
        assert!(matches!(
            PipelineState::decode(&bytes, 0xABCDE0),
            Err(SnapshotError::ParamHashMismatch { .. })
        ));
    }

    #[test]
    fn digest_is_resumable() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 1e4).collect();
        let mut whole = TraceDigest::new();
        whole.update(&xs);
        let mut left = TraceDigest::new();
        left.update(&xs[..37]);
        let mut resumed = TraceDigest::from_value(left.value());
        resumed.update(&xs[37..]);
        assert_eq!(resumed.value(), whole.value());
        assert_ne!(whole.value(), TraceDigest::new().value());
    }

    #[test]
    fn store_rotates_two_generations_and_recovers_latest() {
        let store = tmp_store("rotate");
        let hash = 0x1111;
        store.write(&toy_state(100), hash, 0).unwrap();
        store.write(&toy_state(200), hash, 1).unwrap();
        match store.recover(hash) {
            Recovery::Latest { seq, state } => {
                assert_eq!(seq, 1);
                assert_eq!(state.slices_done, 200);
            }
            other => panic!("expected Latest, got {other:?}"),
        }
        // A third write replaces the oldest slot, keeping two files.
        store.write(&toy_state(300), hash, 2).unwrap();
        assert_eq!(std::fs::read_dir(store.dir()).unwrap().count(), 2);
        match store.recover(hash) {
            Recovery::Latest { seq, state } => {
                assert_eq!(seq, 2);
                assert_eq!(state.slices_done, 300);
            }
            other => panic!("expected Latest, got {other:?}"),
        }
    }

    #[test]
    fn damaged_latest_falls_back_to_previous_generation() {
        let store = tmp_store("fallback");
        let hash = 0x2222;
        store.write(&toy_state(100), hash, 4).unwrap();
        store.write(&toy_state(200), hash, 5).unwrap();
        // Damage the newest generation (seq 5 → odd slot).
        let inj = crate::faults::FaultInjector::new(3);
        inj.corrupt_file(&store.generation_path(5), crate::faults::FileCorruption::BitFlips)
            .unwrap();
        let before = obs::counter_value(Counter::CheckpointFallbacks);
        match store.recover(hash) {
            Recovery::Previous { seq, state, damaged } => {
                assert_eq!(seq, 4);
                assert_eq!(state.slices_done, 100);
                assert_eq!(damaged, 1);
            }
            other => panic!("expected Previous, got {other:?}"),
        }
        assert_eq!(obs::counter_value(Counter::CheckpointFallbacks), before + 1);
    }

    #[test]
    fn all_generations_damaged_is_an_alarmed_cold_start() {
        let store = tmp_store("coldstart");
        let hash = 0x3333;
        store.write(&toy_state(100), hash, 0).unwrap();
        store.write(&toy_state(200), hash, 1).unwrap();
        let inj = crate::faults::FaultInjector::new(3);
        for seq in [0, 1] {
            inj.corrupt_file(
                &store.generation_path(seq),
                crate::faults::FileCorruption::Truncated,
            )
            .unwrap();
        }
        assert_eq!(store.recover(hash), Recovery::ColdStart { damaged: 2 });
        // An empty store is a quiet cold start (no alarm).
        let empty = tmp_store("empty");
        let before = obs::counter_value(Counter::CheckpointFallbacks);
        assert_eq!(empty.recover(hash), Recovery::ColdStart { damaged: 0 });
        assert_eq!(obs::counter_value(Counter::CheckpointFallbacks), before);
    }

    #[test]
    fn stale_generation_swap_restores_older_state_not_garbage() {
        // An operator (or failing disk controller) swaps an old snapshot
        // over the newest generation. The stale file is internally
        // consistent, so it passes every CRC — the store must simply
        // restore the highest *valid* sequence it can find, which is now
        // the stale one. The resumed run redoes work but stays correct.
        let store = tmp_store("stale");
        let hash = 0x4444;
        store.write(&toy_state(100), hash, 8).unwrap(); // even slot
        let old = std::fs::read(store.generation_path(8)).unwrap();
        store.write(&toy_state(200), hash, 9).unwrap(); // odd slot
        // Swap the stale even-generation bytes over the odd slot.
        std::fs::write(store.generation_path(9), &old).unwrap();
        match store.recover(hash) {
            Recovery::Latest { seq, state } => {
                assert_eq!(seq, 8);
                assert_eq!(state.slices_done, 100);
            }
            other => panic!("expected Latest(stale), got {other:?}"),
        }
    }

    #[test]
    fn recover_never_panics_on_any_file_corruption_mode() {
        let hash = 0x5555;
        for mode in crate::faults::FileCorruption::ALL {
            for seed in 0..8u64 {
                let store = tmp_store(&format!("fuzz_{mode:?}_{seed}"));
                store.write(&toy_state(100), hash, 0).unwrap();
                store.write(&toy_state(200), hash, 1).unwrap();
                let inj = crate::faults::FaultInjector::new(seed);
                inj.corrupt_file(&store.generation_path(1), mode).unwrap();
                // Must resolve to a ladder rung, never panic; any state
                // it does return must be one we actually wrote.
                match store.recover(hash) {
                    Recovery::Latest { state, .. } | Recovery::Previous { state, .. } => {
                        assert!(state.slices_done == 100 || state.slices_done == 200);
                    }
                    Recovery::ColdStart { damaged } => assert!(damaged >= 1),
                }
                std::fs::remove_dir_all(store.dir()).ok();
            }
        }
    }
}
