//! Wall-clock measurement and JSON reporting for the pipeline benchmark
//! binary (`pipeline_bench`).
//!
//! The workspace has no serde, so the report is hand-rolled JSON: a flat
//! list of entries, each with a measured median time, an optional
//! baseline it is compared against, and the resulting speedup. The
//! Criterion benches (`cargo bench`) remain the fine-grained view; this
//! module exists so a single binary can emit one machine-readable
//! before/after file (`BENCH_pipeline.json`) that CI checks in.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Instant;
use vbr_stats::obs::CounterSnapshot;

/// Allowed per-group slowdown before [`check_against`] fails: new group
/// total ≤ old × 1.15. Documented in the emitted JSON (schema v4) so
/// the checked-in report carries its own gate contract. 15% rides above
/// shared-CI noise (observed ≤ ~10% run-to-run) while still catching
/// any real regression of the kind this gate exists for (an accidental
/// de-vectorization or algorithmic slip is ≥ 30%).
pub const REGRESSION_TOLERANCE: f64 = 1.15;

/// Times `f` for `reps` repetitions after `warmup` untimed runs and
/// returns the median wall-clock seconds of a single run.
pub fn time_median<F: FnMut()>(warmup: usize, reps: usize, mut f: F) -> f64 {
    assert!(reps >= 1);
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The `rustc --version` string of the toolchain on `PATH`, so a checked
/// in report records which compiler produced the timed code ("unknown"
/// when rustc cannot be invoked).
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One benchmark result: a measured time, optionally compared to a
/// baseline measurement of the same work done the old/serial way.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Tier the entry belongs to (`kernels`, `estimators`, `simulation`).
    pub group: String,
    /// Benchmark name.
    pub name: String,
    /// Median seconds of the measured (new/parallel) path.
    pub secs: f64,
    /// Median seconds of the baseline (old/serial) path, if compared.
    pub baseline_secs: Option<f64>,
    /// Untimed runs before measurement started.
    pub warmup: usize,
    /// Timed repetitions the median was taken over.
    pub reps: usize,
    /// Free-form description of the workload and what is compared.
    pub note: String,
    /// Pipeline-counter activity attributed to this entry: the non-zero
    /// increases of every [`vbr_stats::obs`] counter since the previous
    /// `record*` call (so warmup + timed reps of *this* benchmark, not
    /// the process lifetime). Captured automatically by
    /// [`PerfReport::record`]/[`PerfReport::record_vs`].
    pub metrics: Vec<(&'static str, u64)>,
}

impl PerfEntry {
    /// `baseline_secs / secs`, when a baseline was measured.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_secs.map(|b| b / self.secs)
    }
}

/// The full report written as `BENCH_pipeline.json`.
#[derive(Debug)]
pub struct PerfReport {
    entries: Vec<PerfEntry>,
    /// Counter state at the previous `record*` call (initially at
    /// construction), so each entry gets the delta of *its* benchmark.
    last_counters: CounterSnapshot,
}

impl Default for PerfReport {
    fn default() -> Self {
        PerfReport::new()
    }
}

impl PerfReport {
    /// Empty report. Counter attribution starts here: the first entry
    /// recorded absorbs whatever ran between construction and that
    /// `record*` call.
    pub fn new() -> Self {
        PerfReport { entries: Vec::new(), last_counters: CounterSnapshot::capture() }
    }

    /// Captures the counter delta since the previous record and
    /// advances the attribution cursor.
    fn take_metrics(&mut self) -> Vec<(&'static str, u64)> {
        let now = CounterSnapshot::capture();
        let delta: Vec<(&'static str, u64)> =
            now.delta(&self.last_counters).into_iter().filter(|&(_, v)| v > 0).collect();
        self.last_counters = now;
        delta
    }

    /// Records a standalone timing measured over `(warmup, reps)` runs.
    pub fn record(
        &mut self,
        group: &str,
        name: &str,
        secs: f64,
        (warmup, reps): (usize, usize),
        note: &str,
    ) {
        let metrics = self.take_metrics();
        self.entries.push(PerfEntry {
            group: group.to_string(),
            name: name.to_string(),
            secs,
            baseline_secs: None,
            warmup,
            reps,
            note: note.to_string(),
            metrics,
        });
    }

    /// Records a baseline-vs-new comparison, both sides measured over
    /// the same `(warmup, reps)` schedule.
    pub fn record_vs(
        &mut self,
        group: &str,
        name: &str,
        baseline_secs: f64,
        secs: f64,
        (warmup, reps): (usize, usize),
        note: &str,
    ) {
        let metrics = self.take_metrics();
        self.entries.push(PerfEntry {
            group: group.to_string(),
            name: name.to_string(),
            secs,
            baseline_secs: Some(baseline_secs),
            warmup,
            reps,
            note: note.to_string(),
            metrics,
        });
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[PerfEntry] {
        &self.entries
    }

    /// Folds another run of the same suite into this report, keeping
    /// the per-entry minimum of `secs` and `baseline_secs` (matched by
    /// `(group, name)`; entries only present in `other` are appended).
    ///
    /// Medians of short benchmarks still carry host noise — frequency
    /// boost state, a background daemon — that only ever *adds* time,
    /// so the minimum over several runs is the stable statistic: it
    /// converges on the true floor, while a real regression raises the
    /// floor itself and survives any number of merges. Counter metrics
    /// are kept from the first run that recorded the entry; the
    /// pipelines are deterministic, so reruns produce identical deltas.
    pub fn merge_min(&mut self, other: &PerfReport) {
        for o in &other.entries {
            match self.entries.iter_mut().find(|e| e.group == o.group && e.name == o.name) {
                Some(e) => {
                    e.secs = e.secs.min(o.secs);
                    e.baseline_secs = match (e.baseline_secs, o.baseline_secs) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                None => self.entries.push(o.clone()),
            }
        }
    }

    /// Serialises the report (plus host metadata) to pretty JSON.
    ///
    /// Schema v2 added the compiler version and, per entry, the
    /// iteration schedule (`warmup`/`reps`) the median was taken over —
    /// enough provenance to judge whether two checked-in reports are
    /// comparable. Schema v3 added a `metrics` section: every
    /// [`vbr_stats::obs`] pipeline counter as observed at serialisation
    /// time, plus the process peak RSS, so a checked-in report also
    /// records *what the benchmark exercised* (cache hits, fallbacks,
    /// overflow slots), not just how long it took. Schema v4 adds the
    /// detected SIMD chunk width and CPU target features (entries are
    /// only comparable across hosts when these match), the documented
    /// regression tolerance the CI gate enforces (see
    /// [`check_against`]), and per-entry `metrics`: each entry's own
    /// counter deltas, so process-lifetime sums in the top-level block
    /// can be attributed benchmark by benchmark.
    pub fn to_json(&self, host_threads: usize, rustc: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"vbr-bench/pipeline/v4\",");
        let _ = writeln!(s, "  \"host_threads\": {host_threads},");
        let _ = writeln!(s, "  \"rustc\": {},", json_str(rustc));
        let _ = writeln!(s, "  \"simd_width\": {},", vbr_stats::simd::lanes());
        let _ = writeln!(
            s,
            "  \"target_features\": {},",
            json_str(&vbr_stats::simd::target_features())
        );
        let _ = writeln!(s, "  \"regression_tolerance\": {REGRESSION_TOLERANCE},");
        let _ = writeln!(
            s,
            "  \"regression_note\": {},",
            json_str(
                "CI gate: pipeline_bench --check-against fails if any group's \
                 summed secs exceeds this file's by more than the tolerance \
                 factor; both sides are per-entry minima over repeated runs \
                 (--best-of / gate retries), so the comparison is floor vs \
                 floor, not one noisy sample vs another"
            )
        );
        s.push_str("  \"metrics\": {\n");
        for (name, value) in vbr_stats::obs::counters() {
            let _ = writeln!(s, "    \"{name}\": {value},");
        }
        match vbr_stats::obs::peak_rss_kib() {
            Some(kib) => {
                let _ = writeln!(s, "    \"peak_rss_kib\": {kib}");
            }
            None => s.push_str("    \"peak_rss_kib\": null\n"),
        }
        s.push_str("  },\n");
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"group\": {},", json_str(&e.group));
            let _ = writeln!(s, "      \"name\": {},", json_str(&e.name));
            let _ = writeln!(s, "      \"secs\": {},", json_f64(e.secs));
            match e.baseline_secs {
                Some(b) => {
                    let _ = writeln!(s, "      \"baseline_secs\": {},", json_f64(b));
                    let _ = writeln!(
                        s,
                        "      \"speedup\": {},",
                        json_f64(e.speedup().unwrap())
                    );
                }
                None => {
                    s.push_str("      \"baseline_secs\": null,\n");
                    s.push_str("      \"speedup\": null,\n");
                }
            }
            let _ = writeln!(s, "      \"warmup\": {},", e.warmup);
            let _ = writeln!(s, "      \"reps\": {},", e.reps);
            s.push_str("      \"metrics\": {");
            for (j, (name, value)) in e.metrics.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{name}\": {value}");
            }
            s.push_str("},\n");
            let _ = writeln!(s, "      \"note\": {}", json_str(&e.note));
            s.push_str(if i + 1 == self.entries.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path, host_threads: usize, rustc: &str) -> io::Result<()> {
        std::fs::write(path, self.to_json(host_threads, rustc))
    }

    /// Prints a human-readable summary table to stdout.
    pub fn print_summary(&self) {
        println!("{:<12} {:<42} {:>12} {:>12} {:>8}", "group", "name", "secs", "baseline", "speedup");
        for e in &self.entries {
            let base = e
                .baseline_secs
                .map(|b| format!("{b:.6}"))
                .unwrap_or_else(|| "-".to_string());
            let sp = e
                .speedup()
                .map(|v| format!("{v:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            println!("{:<12} {:<42} {:>12.6} {:>12} {:>8}", e.group, e.name, e.secs, base, sp);
        }
    }
}

/// Extracts the `(group, secs)` pair of every entry from a previously
/// written report (hand-rolled line scan — the workspace has no serde;
/// the emitter in [`PerfReport::to_json`] pins the line shapes this
/// reads). `baseline_secs` lines do not match the `"secs"` prefix, so
/// only measured times are collected.
pub fn parse_group_secs(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut in_entries = false;
    let mut group: Option<String> = None;
    for line in json.lines() {
        let t = line.trim();
        if t.starts_with("\"entries\"") {
            in_entries = true;
            continue;
        }
        if !in_entries {
            continue;
        }
        if let Some(rest) = t.strip_prefix("\"group\": \"") {
            group = rest.strip_suffix("\",").map(|s| s.to_string());
        } else if let Some(rest) = t.strip_prefix("\"secs\": ") {
            if let Some(g) = group.take() {
                if let Ok(v) = rest.trim_end_matches(',').parse::<f64>() {
                    out.push((g, v));
                }
            }
        }
    }
    out
}

/// The CI bench regression gate: compares this run's entries against a
/// checked-in report, group by group. For every group present in both,
/// the new summed `secs` must not exceed the old sum by more than
/// `tolerance` (a factor, e.g. [`REGRESSION_TOLERANCE`] = 1.15 → 15%
/// slowdown budget). A group present in the old report but absent from
/// this run also fails — silently dropping a benchmark must not pass
/// the gate. New groups (absent from the old report) are allowed; they
/// become gated once the report is regenerated.
///
/// Returns the per-group comparison lines on success, or the failure
/// lines (regressed / missing groups) on failure.
pub fn check_against(
    old_json: &str,
    entries: &[PerfEntry],
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    use std::collections::BTreeMap;
    let mut old: BTreeMap<String, f64> = BTreeMap::new();
    for (g, secs) in parse_group_secs(old_json) {
        *old.entry(g).or_insert(0.0) += secs;
    }
    let mut new: BTreeMap<&str, f64> = BTreeMap::new();
    for e in entries {
        *new.entry(&e.group).or_insert(0.0) += e.secs;
    }
    let mut report = Vec::new();
    let mut failures = Vec::new();
    for (g, &old_sum) in &old {
        match new.get(g.as_str()) {
            None => failures.push(format!("group '{g}' in baseline report but not in this run")),
            Some(&new_sum) => {
                let ratio = new_sum / old_sum;
                let line = format!(
                    "group '{g}': {new_sum:.6}s vs baseline {old_sum:.6}s ({ratio:.3}x, budget {tolerance:.2}x)"
                );
                if new_sum > old_sum * tolerance {
                    failures.push(format!("REGRESSION {line}"));
                } else {
                    report.push(line);
                }
            }
        }
    }
    for g in new.keys() {
        if !old.contains_key(*g) {
            report.push(format!("group '{g}': new (no baseline, not gated)"));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

/// Escapes a string as a JSON string literal (ASCII control chars only —
/// benchmark names and notes are plain ASCII by construction).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite f64 as JSON (JSON has no NaN/Inf; those become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_returns_positive_seconds() {
        let t = time_median(1, 3, || {
            let v: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
            assert!(v > 0.0);
        });
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn json_report_shape() {
        let mut r = PerfReport::new();
        r.record("kernels", "fft", 0.5, (1, 3), "plain");
        r.record_vs("estimators", "whittle", 1.0, 0.25, (2, 5), "note \"quoted\"");
        let j = r.to_json(4, "rustc 1.99.0 (test)");
        assert!(j.contains("\"schema\": \"vbr-bench/pipeline/v4\""));
        assert!(j.contains("\"simd_width\": "));
        assert!(j.contains("\"target_features\": "));
        assert!(j.contains("\"regression_tolerance\": 1.15"));
        assert!(j.contains("\"metrics\": {"));
        assert!(j.contains("\"fft_plan_hit\":"));
        assert!(j.contains("\"fgn_cache_evict\":"));
        assert!(j.contains("\"peak_rss_kib\":"));
        assert!(j.contains("\"host_threads\": 4"));
        assert!(j.contains("\"rustc\": \"rustc 1.99.0 (test)\""));
        assert!(j.contains("\"speedup\": 4.000000000"));
        assert!(j.contains("\"warmup\": 2"));
        assert!(j.contains("\"reps\": 5"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"baseline_secs\": null"));
        // Balanced braces/brackets — parseable shape.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn rustc_version_is_nonempty() {
        assert!(!rustc_version().is_empty());
    }

    #[test]
    fn speedup_math() {
        let e = PerfEntry {
            group: "g".into(),
            name: "n".into(),
            secs: 0.5,
            baseline_secs: Some(2.0),
            warmup: 1,
            reps: 3,
            note: String::new(),
            metrics: Vec::new(),
        };
        assert_eq!(e.speedup(), Some(4.0));
    }

    /// Round-trips a report through `to_json` → `parse_group_secs` and
    /// exercises the gate: pass within tolerance, fail beyond it, fail
    /// on a dropped group, ignore brand-new groups.
    #[test]
    fn check_against_gate() {
        let mut old = PerfReport::new();
        old.record("kernels", "a", 1.0, (1, 3), "");
        old.record("kernels", "b", 1.0, (1, 3), "");
        old.record_vs("streaming", "s", 4.0, 2.0, (1, 3), "baseline_secs must not be summed");
        let old_json = old.to_json(4, "rustc test");

        let parsed = parse_group_secs(&old_json);
        assert_eq!(parsed.len(), 3, "one (group, secs) per entry: {parsed:?}");
        assert!(parsed.contains(&("streaming".to_string(), 2.0)));

        // Same groups, slightly faster → pass, with one line per group.
        let mut ok = PerfReport::new();
        ok.record("kernels", "a", 0.9, (1, 3), "");
        ok.record("kernels", "b", 1.0, (1, 3), "");
        ok.record("streaming", "s", 2.1, (1, 3), "");
        ok.record("brand_new", "x", 99.0, (1, 3), "");
        let lines = check_against(&old_json, ok.entries(), REGRESSION_TOLERANCE).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().any(|l| l.contains("brand_new") && l.contains("not gated")));

        // kernels regresses past 15% → fail and name the group.
        let mut slow = PerfReport::new();
        slow.record("kernels", "a", 1.5, (1, 3), "");
        slow.record("kernels", "b", 1.0, (1, 3), "");
        slow.record("streaming", "s", 2.0, (1, 3), "");
        let fails = check_against(&old_json, slow.entries(), REGRESSION_TOLERANCE).unwrap_err();
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("REGRESSION") && fails[0].contains("kernels"));

        // Dropping a benchmarked group entirely must not pass the gate.
        let mut dropped = PerfReport::new();
        dropped.record("kernels", "a", 0.1, (1, 3), "");
        let fails = check_against(&old_json, dropped.entries(), REGRESSION_TOLERANCE).unwrap_err();
        assert!(fails.iter().any(|l| l.contains("streaming") && l.contains("not in this run")));
    }

    /// `merge_min` keeps the fastest observation per `(group, name)` on
    /// both sides of a comparison, and appends entries it has not seen.
    #[test]
    fn merge_min_keeps_fastest() {
        let mut a = PerfReport::new();
        a.record_vs("kernels", "fft", 2.0, 1.0, (1, 3), "");
        a.record("streaming", "gen", 5.0, (1, 3), "");

        let mut b = PerfReport::new();
        b.record_vs("kernels", "fft", 1.8, 1.2, (1, 3), "");
        b.record("streaming", "gen", 4.0, (1, 3), "");
        b.record("brand_new", "x", 9.0, (1, 3), "");

        a.merge_min(&b);
        let fft = &a.entries()[0];
        assert_eq!(fft.secs, 1.0, "kept the faster measured side");
        assert_eq!(fft.baseline_secs, Some(1.8), "kept the faster baseline side");
        assert_eq!(a.entries()[1].secs, 4.0);
        assert_eq!(a.entries()[2].name, "x", "unseen entry appended");

        // Merging is idempotent at the floor: a third, slower run
        // changes nothing.
        let mut c = PerfReport::new();
        c.record_vs("kernels", "fft", 3.0, 2.0, (1, 3), "");
        a.merge_min(&c);
        assert_eq!(a.entries()[0].secs, 1.0);
    }
}
