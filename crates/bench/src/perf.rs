//! Wall-clock measurement and JSON reporting for the pipeline benchmark
//! binary (`pipeline_bench`).
//!
//! The workspace has no serde, so the report is hand-rolled JSON: a flat
//! list of entries, each with a measured median time, an optional
//! baseline it is compared against, and the resulting speedup. The
//! Criterion benches (`cargo bench`) remain the fine-grained view; this
//! module exists so a single binary can emit one machine-readable
//! before/after file (`BENCH_pipeline.json`) that CI checks in.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Instant;

/// Times `f` for `reps` repetitions after `warmup` untimed runs and
/// returns the median wall-clock seconds of a single run.
pub fn time_median<F: FnMut()>(warmup: usize, reps: usize, mut f: F) -> f64 {
    assert!(reps >= 1);
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The `rustc --version` string of the toolchain on `PATH`, so a checked
/// in report records which compiler produced the timed code ("unknown"
/// when rustc cannot be invoked).
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One benchmark result: a measured time, optionally compared to a
/// baseline measurement of the same work done the old/serial way.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Tier the entry belongs to (`kernels`, `estimators`, `simulation`).
    pub group: String,
    /// Benchmark name.
    pub name: String,
    /// Median seconds of the measured (new/parallel) path.
    pub secs: f64,
    /// Median seconds of the baseline (old/serial) path, if compared.
    pub baseline_secs: Option<f64>,
    /// Untimed runs before measurement started.
    pub warmup: usize,
    /// Timed repetitions the median was taken over.
    pub reps: usize,
    /// Free-form description of the workload and what is compared.
    pub note: String,
}

impl PerfEntry {
    /// `baseline_secs / secs`, when a baseline was measured.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_secs.map(|b| b / self.secs)
    }
}

/// The full report written as `BENCH_pipeline.json`.
#[derive(Debug, Default)]
pub struct PerfReport {
    entries: Vec<PerfEntry>,
}

impl PerfReport {
    /// Empty report.
    pub fn new() -> Self {
        PerfReport::default()
    }

    /// Records a standalone timing measured over `(warmup, reps)` runs.
    pub fn record(
        &mut self,
        group: &str,
        name: &str,
        secs: f64,
        (warmup, reps): (usize, usize),
        note: &str,
    ) {
        self.entries.push(PerfEntry {
            group: group.to_string(),
            name: name.to_string(),
            secs,
            baseline_secs: None,
            warmup,
            reps,
            note: note.to_string(),
        });
    }

    /// Records a baseline-vs-new comparison, both sides measured over
    /// the same `(warmup, reps)` schedule.
    pub fn record_vs(
        &mut self,
        group: &str,
        name: &str,
        baseline_secs: f64,
        secs: f64,
        (warmup, reps): (usize, usize),
        note: &str,
    ) {
        self.entries.push(PerfEntry {
            group: group.to_string(),
            name: name.to_string(),
            secs,
            baseline_secs: Some(baseline_secs),
            warmup,
            reps,
            note: note.to_string(),
        });
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[PerfEntry] {
        &self.entries
    }

    /// Serialises the report (plus host metadata) to pretty JSON.
    ///
    /// Schema v2 added the compiler version and, per entry, the
    /// iteration schedule (`warmup`/`reps`) the median was taken over —
    /// enough provenance to judge whether two checked-in reports are
    /// comparable. Schema v3 adds a `metrics` section: every
    /// [`vbr_stats::obs`] pipeline counter as observed at serialisation
    /// time, plus the process peak RSS, so a checked-in report also
    /// records *what the benchmark exercised* (cache hits, fallbacks,
    /// overflow slots), not just how long it took.
    pub fn to_json(&self, host_threads: usize, rustc: &str) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"vbr-bench/pipeline/v3\",");
        let _ = writeln!(s, "  \"host_threads\": {host_threads},");
        let _ = writeln!(s, "  \"rustc\": {},", json_str(rustc));
        s.push_str("  \"metrics\": {\n");
        for (name, value) in vbr_stats::obs::counters() {
            let _ = writeln!(s, "    \"{name}\": {value},");
        }
        match vbr_stats::obs::peak_rss_kib() {
            Some(kib) => {
                let _ = writeln!(s, "    \"peak_rss_kib\": {kib}");
            }
            None => s.push_str("    \"peak_rss_kib\": null\n"),
        }
        s.push_str("  },\n");
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"group\": {},", json_str(&e.group));
            let _ = writeln!(s, "      \"name\": {},", json_str(&e.name));
            let _ = writeln!(s, "      \"secs\": {},", json_f64(e.secs));
            match e.baseline_secs {
                Some(b) => {
                    let _ = writeln!(s, "      \"baseline_secs\": {},", json_f64(b));
                    let _ = writeln!(
                        s,
                        "      \"speedup\": {},",
                        json_f64(e.speedup().unwrap())
                    );
                }
                None => {
                    s.push_str("      \"baseline_secs\": null,\n");
                    s.push_str("      \"speedup\": null,\n");
                }
            }
            let _ = writeln!(s, "      \"warmup\": {},", e.warmup);
            let _ = writeln!(s, "      \"reps\": {},", e.reps);
            let _ = writeln!(s, "      \"note\": {}", json_str(&e.note));
            s.push_str(if i + 1 == self.entries.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path, host_threads: usize, rustc: &str) -> io::Result<()> {
        std::fs::write(path, self.to_json(host_threads, rustc))
    }

    /// Prints a human-readable summary table to stdout.
    pub fn print_summary(&self) {
        println!("{:<12} {:<42} {:>12} {:>12} {:>8}", "group", "name", "secs", "baseline", "speedup");
        for e in &self.entries {
            let base = e
                .baseline_secs
                .map(|b| format!("{b:.6}"))
                .unwrap_or_else(|| "-".to_string());
            let sp = e
                .speedup()
                .map(|v| format!("{v:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            println!("{:<12} {:<42} {:>12.6} {:>12} {:>8}", e.group, e.name, e.secs, base, sp);
        }
    }
}

/// Escapes a string as a JSON string literal (ASCII control chars only —
/// benchmark names and notes are plain ASCII by construction).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite f64 as JSON (JSON has no NaN/Inf; those become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_median_returns_positive_seconds() {
        let t = time_median(1, 3, || {
            let v: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
            assert!(v > 0.0);
        });
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn json_report_shape() {
        let mut r = PerfReport::new();
        r.record("kernels", "fft", 0.5, (1, 3), "plain");
        r.record_vs("estimators", "whittle", 1.0, 0.25, (2, 5), "note \"quoted\"");
        let j = r.to_json(4, "rustc 1.99.0 (test)");
        assert!(j.contains("\"schema\": \"vbr-bench/pipeline/v3\""));
        assert!(j.contains("\"metrics\": {"));
        assert!(j.contains("\"fft_plan_hit\":"));
        assert!(j.contains("\"fgn_cache_evict\":"));
        assert!(j.contains("\"peak_rss_kib\":"));
        assert!(j.contains("\"host_threads\": 4"));
        assert!(j.contains("\"rustc\": \"rustc 1.99.0 (test)\""));
        assert!(j.contains("\"speedup\": 4.000000000"));
        assert!(j.contains("\"warmup\": 2"));
        assert!(j.contains("\"reps\": 5"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"baseline_secs\": null"));
        // Balanced braces/brackets — parseable shape.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn rustc_version_is_nonempty() {
        assert!(!rustc_version().is_empty());
    }

    #[test]
    fn speedup_math() {
        let e = PerfEntry {
            group: "g".into(),
            name: "n".into(),
            secs: 0.5,
            baseline_secs: Some(2.0),
            warmup: 1,
            reps: 3,
            note: String::new(),
        };
        assert_eq!(e.speedup(), Some(4.0));
    }
}
