//! Figures 3–6: the marginal bandwidth distribution and its models.

use crate::{banner, compare, Ctx};
use vbr_model::{estimate_trace, EstimateOptions, HurstMethod};
use vbr_stats::dist::{ContinuousDist, Gamma, GammaPareto, Lognormal, Normal};
use vbr_stats::histogram::{Ecdf, Histogram};

fn fitted_models(ctx: &Ctx) -> (Normal, Gamma, Lognormal, GammaPareto) {
    let s = ctx.trace.summary_frame();
    let est = estimate_trace(
        &ctx.trace,
        &EstimateOptions {
            hurst_method: HurstMethod::VarianceTime,
            ..Default::default()
        },
    );
    (
        Normal::from_moments(s.mean, s.std_dev),
        Gamma::from_moments(s.mean, s.std_dev),
        Lognormal::from_moments(s.mean, s.std_dev),
        est.params.marginal(),
    )
}

/// Fig 3: bandwidth distributions of five two-minute segments vs the
/// whole trace — long-term statistics differ markedly from what a queue
/// sees over minutes.
pub fn fig3(ctx: &Ctx) {
    banner("Fig 3 — per-segment bandwidth distributions (five 2-minute segments)");
    let series = ctx.trace.frame_series();
    let seg_frames = (120.0 * ctx.trace.fps()) as usize;
    let n = ctx.trace.frames();
    let starts: Vec<usize> = (0..5).map(|i| (n - seg_frames) * (2 * i + 1) / 10).collect();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    println!("{:>10} {:>12} {:>10} {:>10}", "segment", "mean", "sd", "CoV");
    for (i, &s0) in starts.iter().enumerate() {
        let seg = &series[s0..s0 + seg_frames];
        let mean = seg.iter().sum::<f64>() / seg.len() as f64;
        let sd = (seg.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / seg.len() as f64)
            .sqrt();
        println!("{:>10} {:>12.0} {:>10.0} {:>10.3}", i + 1, mean, sd, sd / mean);
        let h = Histogram::from_data(seg, 40);
        for (x, d) in h.density() {
            rows.push(vec![(i + 1) as f64, x, d]);
        }
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let sd =
        (series.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / series.len() as f64).sqrt();
    println!("{:>10} {:>12.0} {:>10.0} {:>10.3}", "whole", mean, sd, sd / mean);
    let h = Histogram::from_data(&series, 60);
    for (x, d) in h.density() {
        rows.push(vec![0.0, x, d]);
    }
    ctx.write_csv("fig3_segment_histograms.csv", "segment,bytes_per_frame,density", &rows);
    println!(
        "shape check: segment means spread over a wide range relative to sd -> \
         short windows deviate significantly from the long-term distribution"
    );
}

/// Fig 4: log-log CCDF of the frame data against Normal, Gamma,
/// Lognormal and Pareto models — only a heavy (Pareto) tail keeps up.
pub fn fig4(ctx: &Ctx) {
    banner("Fig 4 — complementary CDF (right tail), data vs models");
    let series = ctx.trace.frame_series();
    let ecdf = Ecdf::new(&series);
    let (normal, gamma, lognormal, hybrid) = fitted_models(ctx);
    let pareto = hybrid.tail_pareto();

    let mut rows = Vec::new();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "x", "empirical", "Normal", "Gamma", "Lognormal", "Pareto"
    );
    for q in [0.5, 0.8, 0.9, 0.95, 0.99, 0.997, 0.999, 0.9997, 0.9999] {
        let x = ecdf.quantile(q);
        let row = [
            ecdf.ccdf(x),
            normal.ccdf(x),
            gamma.ccdf(x),
            lognormal.ccdf(x),
            pareto.ccdf(x),
        ];
        println!(
            "{:>10.0} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            x, row[0], row[1], row[2], row[3], row[4]
        );
        rows.push(vec![x, row[0], row[1], row[2], row[3], row[4]]);
    }
    ctx.write_csv(
        "fig4_ccdf.csv",
        "bytes,empirical,normal,gamma,lognormal,pareto",
        &rows,
    );
    // Shape check: at the 99.9th percentile the Normal must be orders of
    // magnitude too light, the Pareto within one order of magnitude.
    let x = ecdf.quantile(0.999);
    let emp = ecdf.ccdf(x);
    compare(
        "tail behaviour at the 99.9th pct",
        "Normal falls off too fast; Pareto matches",
        &format!(
            "Normal/emp = {:.1e}, Pareto/emp = {:.2}",
            normal.ccdf(x) / emp,
            pareto.ccdf(x) / emp
        ),
    );

    // Quantified fit (extension: the paper eyeballs the overlays).
    // KS measures the body — where the paper says the bell-shaped
    // candidates do fine; the tail metric (max |log₁₀ CCDF error| over
    // the top 1 %) is where only the heavy tail survives.
    use vbr_stats::ks_statistic;
    let tail_err = |d: &dyn vbr_stats::dist::ContinuousDist| -> f64 {
        [0.99, 0.995, 0.999, 0.9995, 0.9997]
            .iter()
            .map(|&q| {
                let x = ecdf.quantile(q);
                (d.ccdf(x).max(1e-300).log10() - ecdf.ccdf(x).max(1e-300).log10()).abs()
            })
            .fold(0.0f64, f64::max)
    };
    println!("\nfit metrics (lower is better):");
    println!("{:<14} {:>10} {:>22}", "model", "KS (body)", "max |log10 err| (tail)");
    let rows: Vec<(&str, f64, f64)> = vec![
        ("Normal", ks_statistic(&series, &normal), tail_err(&normal)),
        ("Gamma", ks_statistic(&series, &gamma), tail_err(&gamma)),
        ("Lognormal", ks_statistic(&series, &lognormal), tail_err(&lognormal)),
        ("Gamma/Pareto", ks_statistic(&series, &hybrid), tail_err(&hybrid)),
    ];
    for (name, ks, te) in &rows {
        println!("{name:<14} {ks:>10.4} {te:>22.2}");
    }
    let best_tail = rows
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap()
        .0;
    compare(
        "best tail fit",
        "Gamma/Pareto hybrid (bells match only the body)",
        best_tail,
    );
}

/// Fig 5: log-log CDF of the left tail — the Gamma fits the lower end.
pub fn fig5(ctx: &Ctx) {
    banner("Fig 5 — cumulative distribution (left tail), data vs models");
    let series = ctx.trace.frame_series();
    let ecdf = Ecdf::new(&series);
    let (normal, gamma, lognormal, hybrid) = fitted_models(ctx);

    let mut rows = Vec::new();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "x", "empirical", "Normal", "Gamma", "Lognormal", "Gamma/Pareto"
    );
    for q in [0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3] {
        let x = ecdf.quantile(q);
        let row =
            [ecdf.cdf(x), normal.cdf(x), gamma.cdf(x), lognormal.cdf(x), hybrid.cdf(x)];
        println!(
            "{:>10.0} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            x, row[0], row[1], row[2], row[3], row[4]
        );
        rows.push(vec![x, row[0], row[1], row[2], row[3], row[4]]);
    }
    ctx.write_csv(
        "fig5_left_tail_cdf.csv",
        "bytes,empirical,normal,gamma,lognormal,gamma_pareto",
        &rows,
    );
    let x = ecdf.quantile(0.003);
    compare(
        "left-tail fit at the 0.3rd pct",
        "Gamma adequate",
        &format!("Gamma/emp = {:.2}", gamma.cdf(x) / ecdf.cdf(x)),
    );
}

/// Fig 6: probability density of the data vs the Gamma/Pareto model.
pub fn fig6(ctx: &Ctx) {
    banner("Fig 6 — probability density vs Gamma/Pareto model");
    let series = ctx.trace.frame_series();
    let (_, _, _, hybrid) = fitted_models(ctx);
    let h = Histogram::from_data(&series, 80);
    let mut rows = Vec::new();
    let mut max_dev: f64 = 0.0;
    let mut peak_density: f64 = 0.0;
    for (x, d) in h.density() {
        let model = hybrid.pdf(x);
        rows.push(vec![x, d, model]);
        peak_density = peak_density.max(d);
        if d > 1e-7 {
            max_dev = max_dev.max((d - model).abs());
        }
    }
    ctx.write_csv("fig6_density.csv", "bytes,empirical_density,gamma_pareto_pdf", &rows);
    compare(
        "density agreement",
        "model overlays the data",
        &format!(
            "max |data - model| = {:.1}% of the modal density",
            100.0 * max_dev / peak_density
        ),
    );
    println!(
        "threshold x_th = {:.0} bytes, Pareto tail holds {:.1}% of the mass \
         (paper: ~3%)",
        hybrid.threshold(),
        100.0 * hybrid.tail_fraction()
    );
}
