//! Figure 16: the engineering test of the source model — Q-C curves of
//! the trace vs the full model vs the two ablations, at `P_l = 0`.

use crate::{banner, compare, Ctx};
use vbr_model::{estimate_trace, EstimateOptions, HurstMethod, SourceModel};
use vbr_qsim::{LossMetric, LossTarget, MuxSim};
use vbr_video::Trace;

/// Fig 16: trace vs fractional-ARIMA/Gaussian vs full model vs i.i.d.
/// Gamma/Pareto.
pub fn fig16(ctx: &Ctx) {
    banner("Fig 16 — trace vs source-model variants (P_l = 0)");
    let est = estimate_trace(
        &ctx.trace,
        &EstimateOptions { hurst_method: HurstMethod::VarianceTime, ..Default::default() },
    );
    println!(
        "fitted parameters: mu = {:.0}, sigma = {:.0}, m_T = {:.1}, H = {:.2}\n",
        est.params.mu_gamma, est.params.sigma_gamma, est.params.tail_slope, est.params.hurst
    );

    let frames = ctx.trace.frames();
    let fps = ctx.trace.fps();
    let spf = ctx.trace.slices_per_frame();
    let gen = |m: &SourceModel, seed: u64| m.generate_trace(frames, fps, spf, seed);

    let variants: Vec<(&str, Trace)> = vec![
        ("trace", ctx.trace.clone()),
        ("full model", gen(&SourceModel::full(est.params), 1601)),
        ("fARIMA Gaussian", gen(&SourceModel::gaussian_marginal(est.params), 1601)),
        ("iid Gamma/Pareto", gen(&SourceModel::iid_gamma_pareto(est.params), 1601)),
    ];

    let grid: Vec<f64> = if ctx.quick {
        vec![0.001, 0.002, 0.01]
    } else {
        vec![0.0005, 0.001, 0.002, 0.005, 0.02]
    };
    let ns: &[usize] = if ctx.quick { &[1, 5] } else { &[1, 2, 5, 20] };
    let iters = ctx.search_iters();

    let mut rows = Vec::new();
    // capacities[variant index] at the 2 ms column, per N, for shape checks.
    let mut at2ms: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for &n in ns {
        println!("N = {n}");
        print!("{:>18}", "T_max [ms] ->");
        for &tm in &grid {
            print!(" {:>9.2}", tm * 1e3);
        }
        println!();
        for (vi, (name, trace)) in variants.iter().enumerate() {
            let sim = MuxSim::new(trace, n, 16 + n as u64);
            print!("{name:>18}");
            for (gi, &tm) in grid.iter().enumerate() {
                let c = sim.required_capacity(tm, LossTarget::Zero, LossMetric::Overall, iters)
                    / n as f64;
                print!(" {:>8.2}M", c * 8.0 / 1e6);
                rows.push(vec![n as f64, vi as f64, tm * 1e3, c * 8.0 / 1e6]);
                if (tm * 1e3 - 2.0).abs() < 1e-9 || (ctx.quick && gi == 1) {
                    at2ms[vi].push(c);
                }
            }
            println!();
        }
        println!();
    }
    ctx.write_csv(
        "fig16_model_comparison.csv",
        "n_sources,variant_index,t_max_ms,capacity_per_source_mbps",
        &rows,
    );

    // Shape checks against the paper's reading of Fig 16.
    let mean_err = |vi: usize| -> f64 {
        at2ms[vi]
            .iter()
            .zip(&at2ms[0])
            .map(|(&m, &t)| (m - t).abs() / t)
            .sum::<f64>()
            / at2ms[0].len() as f64
    };
    let full = mean_err(1);
    let gauss = mean_err(2);
    let iid = mean_err(3);
    compare(
        "full model vs ablations (mean |rel err| vs trace @2 ms)",
        "full model consistently closest",
        &format!("full {:.1}%, Gaussian {:.1}%, iid {:.1}%", full * 100.0, gauss * 100.0, iid * 100.0),
    );
    // Agreement improves with N: relative error at the largest N below
    // that at N = 1 for the full model.
    if at2ms[1].len() >= 2 {
        let first = (at2ms[1][0] - at2ms[0][0]).abs() / at2ms[0][0];
        let last = (at2ms[1].last().unwrap() - at2ms[0].last().unwrap()).abs()
            / at2ms[0].last().unwrap();
        compare(
            "agreement vs N (full model)",
            "improves as N grows",
            &format!("rel err N=min {:.1}% -> N=max {:.1}%", first * 100.0, last * 100.0),
        );
    }
}
