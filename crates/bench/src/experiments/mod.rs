//! One module per group of paper artefacts. Every public function
//! reproduces one table or figure and prints paper-vs-measured rows.

pub mod ext;
pub mod marginals;
pub mod model_cmp;
pub mod queueing;
pub mod tables;
pub mod temporal;

use crate::Ctx;

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "ext",
];

/// Dispatches one experiment by id. Returns false for unknown ids.
pub fn run(ctx: &Ctx, id: &str) -> bool {
    match id {
        "table1" => tables::table1(ctx),
        "table2" => tables::table2(ctx),
        "table3" => tables::table3(ctx),
        "fig1" => temporal::fig1(ctx),
        "fig2" => temporal::fig2(ctx),
        "fig3" => marginals::fig3(ctx),
        "fig4" => marginals::fig4(ctx),
        "fig5" => marginals::fig5(ctx),
        "fig6" => marginals::fig6(ctx),
        "fig7" => temporal::fig7(ctx),
        "fig8" => temporal::fig8(ctx),
        "fig9" => temporal::fig9(ctx),
        "fig10" => temporal::fig10(ctx),
        "fig11" => temporal::fig11(ctx),
        "fig12" => temporal::fig12(ctx),
        "fig13" => queueing::fig13(ctx),
        "fig14" => queueing::fig14(ctx),
        "fig15" => queueing::fig15(ctx),
        "fig16" => model_cmp::fig16(ctx),
        "fig17" => queueing::fig17(ctx),
        "ext" => ext::ext(ctx),
        _ => return false,
    }
    true
}
