//! Figures 1–2 and 7–12: the time series, its low-frequency content and
//! the long-range-dependence evidence.

use crate::{banner, compare, Ctx};
use vbr_lrd::{aggregate, rs_analysis, variance_time, RsOptions, VtOptions};
use vbr_stats::acf::{autocorrelation, exponential_fit};
use vbr_stats::ci::prefix_mean_cis;
use vbr_stats::moving_average::{downsample, moving_average};
use vbr_stats::periodogram::Periodogram;

/// Fig 1: the complete two-hour time series (downsampled for plotting).
pub fn fig1(ctx: &Ctx) {
    banner("Fig 1 — full time series");
    let series = ctx.trace.frame_series();
    let ds = downsample(&series, 2000);
    let rows: Vec<Vec<f64>> =
        ds.iter().enumerate().map(|(i, &v)| vec![i as f64, v]).collect();
    ctx.write_csv("fig1_timeseries.csv", "block,bytes_per_frame", &rows);

    // Landmarks: opening plateau, three central peaks, late plateau.
    let n = series.len();
    let mean: f64 = series.iter().sum::<f64>() / n as f64;
    let opening: f64 = series[..1000.min(n)].iter().sum::<f64>() / 1000.0f64.min(n as f64);
    let mid = &series[n * 2 / 5..n * 3 / 5];
    let mid_peak = mid.iter().cloned().fold(0.0f64, f64::max);
    let global_peak = series.iter().cloned().fold(0.0f64, f64::max);
    compare(
        "opening text sequence (42 s)",
        "wide high plateau",
        &format!("opening mean = {:.2}x movie mean", opening / mean),
    );
    compare(
        "three special-effects peaks near centre",
        "highest peaks of the movie",
        &format!(
            "central-fifth peak = {:.0} bytes (global max {:.0})",
            mid_peak, global_peak
        ),
    );
}

/// Fig 2: low-frequency content via a 20 000-frame moving average.
pub fn fig2(ctx: &Ctx) {
    banner("Fig 2 — low-frequency content (moving average, window 20 000 frames)");
    let series = ctx.trace.frame_series();
    let ma = moving_average(&series, 20_000.min(series.len() / 2));
    let ds = downsample(&ma, 1000);
    let rows: Vec<Vec<f64>> =
        ds.iter().enumerate().map(|(i, &v)| vec![i as f64, v]).collect();
    ctx.write_csv("fig2_moving_average.csv", "block,ma_bytes_per_frame", &rows);
    let lo = ma.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ma.iter().cloned().fold(0.0f64, f64::max);
    compare(
        "14-minute-scale modulation",
        "strong (story follows arc)",
        &format!("MA range {:.0}..{:.0} = {:.0}% of the mean", lo, hi,
            100.0 * (hi - lo) * series.len() as f64 / series.iter().sum::<f64>()),
    );
    println!("strong low-frequency content is the visible signature of LRD (paper §2).");
}

/// Fig 7: autocorrelation to lag 10 000 — exponential at first, then
/// hyperbolic (the LRD signature).
pub fn fig7(ctx: &Ctx) {
    banner("Fig 7 — autocorrelation function, lags 0..10 000");
    let series = ctx.trace.frame_series();
    let max_lag = 10_000.min(series.len() / 4);
    let acf = autocorrelation(&series, max_lag);
    let rows: Vec<Vec<f64>> = (0..=max_lag)
        .step_by(10)
        .map(|k| vec![k as f64, acf[k]])
        .collect();
    ctx.write_csv("fig7_acf.csv", "lag,autocorrelation", &rows);

    let rho = exponential_fit(&acf, 100);
    println!("exponential fit over lags 1..100: rho = {rho:.4}");
    println!("{:>8} {:>12} {:>14}", "lag", "r(lag)", "rho^lag");
    let mut breakdown = None;
    for &k in &[50usize, 100, 300, 600, 1200, 3000, 6000, 10_000] {
        if k > max_lag {
            break;
        }
        let fit = rho.powi(k as i32);
        println!("{k:>8} {:>12.4} {:>14.3e}", acf[k], fit);
        if breakdown.is_none() && acf[k] > 5.0 * fit && acf[k] > 0.02 {
            breakdown = Some(k);
        }
    }
    compare(
        "exponential fit validity",
        "only up to ~100-300 lags",
        &format!(
            "data exceeds 5x the exponential fit from lag ~{}",
            breakdown.map_or("(none)".into(), |k| k.to_string())
        ),
    );
}

/// Fig 8: periodogram on log-linear axes — `w^-alpha` at low frequency.
pub fn fig8(ctx: &Ctx) {
    banner("Fig 8 — periodogram (power spectral density)");
    let series = ctx.trace.frame_series();
    let pg = Periodogram::compute(&series);
    // Log-bin the ordinates for a plottable CSV.
    let mut rows = Vec::new();
    let mut k = 1usize;
    while k < pg.len() {
        let k2 = (k as f64 * 1.3).ceil() as usize;
        let hi = k2.min(pg.len());
        let p: f64 =
            pg.power()[k - 1..hi].iter().sum::<f64>() / (hi - (k - 1)) as f64;
        let w: f64 = pg.freqs()[(k - 1 + hi) / 2];
        rows.push(vec![w, p]);
        k = k2 + 1;
    }
    ctx.write_csv("fig8_periodogram.csv", "omega,power", &rows);

    let fit = pg.low_freq_slope(0.02);
    compare(
        "low-frequency behaviour",
        "grows like w^-alpha as w->0 (LRD)",
        &format!("I(w) ~ w^{:.2} over the lowest 2% of frequencies (R^2 = {:.2})",
            fit.slope, fit.r_squared),
    );
    println!(
        "implied H = (1 + alpha)/2 = {:.2}",
        (1.0 - fit.slope) / 2.0
    );
}

/// Fig 9: mean-rate estimates from growing prefixes with (misleading)
/// i.i.d. confidence intervals, plus the LRD-corrected ones.
pub fn fig9(ctx: &Ctx) {
    banner("Fig 9 — mean estimation from partial observations, 95% CIs");
    let series = ctx.trace.frame_series();
    let n = series.len();
    let final_mean = series.iter().sum::<f64>() / n as f64;
    let ns: Vec<usize> = [
        1_000usize, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 171_000,
    ]
    .into_iter()
    .filter(|&k| k <= n)
    .collect();
    let cis = prefix_mean_cis(&series, &ns, 0.95, 0.8);

    let mut rows = Vec::new();
    let mut iid_misses = 0usize;
    let mut lrd_misses = 0usize;
    println!(
        "{:>8} {:>10} {:>22} {:>6} {:>26} {:>6}",
        "n", "mean", "iid 95% CI", "hit?", "LRD-corrected CI (H=0.8)", "hit?"
    );
    for (k, iid, lrd) in &cis {
        let hit_iid = iid.contains(final_mean);
        let hit_lrd = lrd.contains(final_mean);
        iid_misses += usize::from(!hit_iid);
        lrd_misses += usize::from(!hit_lrd);
        println!(
            "{k:>8} {:>10.0} [{:>9.0}, {:>9.0}] {:>6} [{:>11.0}, {:>11.0}] {:>6}",
            iid.mean,
            iid.lo,
            iid.hi,
            if hit_iid { "yes" } else { "NO" },
            lrd.lo,
            lrd.hi,
            if hit_lrd { "yes" } else { "NO" },
        );
        rows.push(vec![*k as f64, iid.mean, iid.lo, iid.hi, lrd.lo, lrd.hi]);
    }
    ctx.write_csv(
        "fig9_mean_cis.csv",
        "n,prefix_mean,iid_lo,iid_hi,lrd_lo,lrd_hi",
        &rows,
    );
    compare(
        "conventional (iid) CI coverage of the final mean",
        "fails for most n",
        &format!("{iid_misses}/{} prefixes missed", cis.len()),
    );
    compare(
        "LRD-corrected CI coverage",
        "\"will disappear when taking LRD into account\"",
        &format!("{lrd_misses}/{} prefixes missed", cis.len()),
    );
}

/// Fig 10: the aggregated processes m = 100, 500, 1000 retain significant
/// correlations and look alike — the self-similarity demonstration.
pub fn fig10(ctx: &Ctx) {
    banner("Fig 10 — self-similarity: aggregated series m = 100, 500, 1000");
    let series = ctx.trace.frame_series();
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>14}",
        "m", "points", "r(1)", "r(5)", "CoV of X^(m)"
    );
    for &m in &[100usize, 500, 1000] {
        let agg = aggregate(&series, m);
        if agg.len() < 32 {
            println!("{m:>6}   (series too short)");
            continue;
        }
        let r = autocorrelation(&agg, 5.min(agg.len() - 1));
        let mean = agg.iter().sum::<f64>() / agg.len() as f64;
        let sd =
            (agg.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / agg.len() as f64).sqrt();
        println!(
            "{m:>6} {:>8} {:>10.3} {:>10.3} {:>14.3}",
            agg.len(),
            r[1],
            r.get(5).copied().unwrap_or(f64::NAN),
            sd / mean
        );
        for (i, &v) in agg.iter().take(400).enumerate() {
            rows.push(vec![m as f64, i as f64, v]);
        }
    }
    ctx.write_csv("fig10_aggregated_series.csv", "m,index,mean_bytes_per_frame", &rows);
    compare(
        "aggregated-series correlations",
        "significant at every m (SRD would whiten)",
        "r(1) stays large across m = 100..1000",
    );
}

/// Fig 11: the variance-time plot.
pub fn fig11(ctx: &Ctx) {
    banner("Fig 11 — variance-time plot");
    let series = ctx.trace.frame_series();
    let vt = variance_time(
        &series,
        &VtOptions { fit_min_m: 200, ..VtOptions::default() },
    );
    let rows: Vec<Vec<f64>> = vt
        .block_sizes
        .iter()
        .zip(&vt.normalized_variance)
        .map(|(&m, &v)| vec![m as f64, v])
        .collect();
    ctx.write_csv("fig11_variance_time.csv", "m,normalized_variance", &rows);
    compare("slope beta", "~ -0.44 (H = 0.78)", &format!("{:.2}", -vt.beta));
    compare("Hurst estimate", "0.78", &format!("{:.2}", vt.hurst));
    println!("reference: an SRD process shows slope -1.0 (the paper's dotted line).");
}

/// Fig 12: the pox diagram of R/S.
pub fn fig12(ctx: &Ctx) {
    banner("Fig 12 — pox diagram of R/S");
    let series = ctx.trace.frame_series();
    let rs = rs_analysis(&series, &RsOptions::default());
    let rows: Vec<Vec<f64>> =
        rs.points.iter().map(|&(n, v)| vec![n as f64, v]).collect();
    ctx.write_csv("fig12_rs_pox.csv", "lag,rs", &rows);
    compare(
        "least-squares slope (asymptotic H)",
        "~0.83",
        &format!("{:.2} (R^2 of the fit: {:.3})", rs.hurst, rs.fit.r_squared),
    );
    println!("{} pox points over lags 10..{}", rs.points.len(),
        rs.points.iter().map(|p| p.0).max().unwrap_or(0));
}
