//! Tables 1–3 of the paper.

use crate::{banner, compare, Ctx};
use vbr_lrd::{hurst_report, ReportOptions, VtOptions};

/// Table 1: parameters for generating the VBR video trace.
pub fn table1(ctx: &Ctx) {
    banner("Table 1 — trace generation parameters");
    let t = &ctx.trace;
    // The paper's source format: 480 × 504 monochrome, 8 bits/pel.
    let raw_frame_bytes: u64 = 480 * 504;
    compare("Coding algorithms", "DCT, RLE, Huffman", "DCT, RLE, Huffman (vbr-video)");
    compare("Duration", "2 hours", &format!("{:.2} hours", t.duration_secs() / 3600.0));
    compare("Video frames", "171,000", &format!("{}", t.frames()));
    compare("Frame dimensions", "480 x 504 pels", "480 x 504 (synthetic equivalent)");
    compare("Pel resolution", "8 bits/pel mono", "8 bits/pel mono");
    compare("Frame rate", "24 per second", &format!("{} per second", t.fps()));
    compare("\"Slice\" rate", "30 per frame", &format!("{} per frame", t.slices_per_frame()));
    compare(
        "Avg. bandwidth",
        "5.34 Mb/s",
        &format!("{:.2} Mb/s", t.mean_bandwidth_bps() / 1e6),
    );
    compare(
        "Avg. compression ratio",
        "8.70",
        &format!("{:.2}", t.compression_ratio(raw_frame_bytes)),
    );
}

/// Table 2: statistics of the VBR video trace at frame and slice ΔT.
pub fn table2(ctx: &Ctx) {
    banner("Table 2 — trace statistics (frame | slice)");
    let f = ctx.trace.summary_frame();
    let s = ctx.trace.summary_slice();
    let row = |label: &str, paper_f: &str, paper_s: &str, mf: f64, ms: f64, digits: usize| {
        compare(
            label,
            &format!("{paper_f} | {paper_s}"),
            &format!("{mf:.digits$} | {ms:.digits$}"),
        );
    };
    row("Time unit dT [ms]", "41.67", "1.389", f.delta_t_ms, s.delta_t_ms, 3);
    row("Mean bandwidth [bytes/dT]", "27791", "926.4", f.mean, s.mean, 1);
    row("Standard deviation [bytes/dT]", "6254", "289.5", f.std_dev, s.std_dev, 1);
    row("Coef. of variation", "0.23", "0.31", f.coef_variation, s.coef_variation, 2);
    row("Maximum bandwidth [bytes/dT]", "78459", "3668", f.max, s.max, 0);
    row("Minimum bandwidth [bytes/dT]", "8622", "257", f.min, s.min, 0);
    row("Peak/mean bandwidth", "2.82", "3.96", f.peak_to_mean, s.peak_to_mean, 2);
}

/// Table 3: estimates of H from all methods.
pub fn table3(ctx: &Ctx) {
    banner("Table 3 — Hurst parameter estimates");
    let series = ctx.trace.frame_series();
    // The paper takes its measurement from ~200 frames upward.
    let opts = ReportOptions {
        vt: VtOptions { fit_min_m: 200, ..VtOptions::default() },
        ..ReportOptions::default()
    };
    let rep = hurst_report(&series, &opts);
    compare("Variance-Time", "0.78", &format!("{:.2}", rep.variance_time.hurst));
    compare("R/S Analysis", "0.83", &format!("{:.2}", rep.rs.hurst));
    compare("R/S Aggregated", "0.78", &format!("{:.2}", rep.rs_aggregated.hurst));
    compare(
        "R/S with n, M varied",
        "0.81-0.83",
        &format!("{:.2}-{:.2}", rep.rs_varied_range.0, rep.rs_varied_range.1),
    );
    compare(
        "Whittle estimate",
        "0.8 +/- 0.088",
        &format!("{:.2} +/- {:.3}", rep.whittle.hurst, 1.96 * rep.whittle.std_err),
    );
    println!("\nWhittle aggregation sweep (paper reads the estimate at m ~ 700):");
    for (m, e) in &rep.whittle_sweep {
        println!(
            "  m = {m:>4}: H = {:.3} +/- {:.3}",
            e.hurst,
            1.96 * e.std_err
        );
    }
    println!(
        "extension (log-periodogram regression): H = {:.2}",
        rep.periodogram.hurst
    );
    println!(
        "extension (local Whittle, semiparametric): H = {:.2} +/- {:.3}",
        rep.local_whittle.hurst,
        1.96 * rep.local_whittle.std_err
    );
}
