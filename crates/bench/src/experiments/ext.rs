//! The beyond-the-paper extension suite, demonstrated in one place:
//! genre fingerprints, the extended estimator battery, admission control
//! and the Norros closed form.

use crate::{banner, compare, Ctx};
use vbr_lrd::{local_whittle, rs_analysis, wavelet_hurst, RsOptions};
use vbr_qsim::{
    admit_by_norros, admit_by_simulation, fbm_variance_coef, LossMetric, LossTarget,
};
use vbr_video::{generate_screenplay, Genre, ScreenplayConfig};

/// Runs the extension showcase (not a paper artefact; id `ext`).
pub fn ext(ctx: &Ctx) {
    banner("Extensions — genre fingerprints");
    let frames = if ctx.quick { 20_000 } else { 60_000 };
    println!(
        "{:<16} {:>12} {:>8} {:>10} {:>8}",
        "genre", "mean [Mb/s]", "CoV", "peak/mean", "R/S H"
    );
    let mut rows = Vec::new();
    for (i, (name, genre)) in [
        ("action movie", Genre::ActionMovie),
        ("drama", Genre::Drama),
        ("conference", Genre::Videoconference),
        ("sports", Genre::Sports),
    ]
    .iter()
    .enumerate()
    {
        let t = generate_screenplay(&ScreenplayConfig::genre(*genre, frames, 77));
        let s = t.summary_frame();
        let h = rs_analysis(&t.frame_series(), &RsOptions::default()).hurst;
        println!(
            "{:<16} {:>12.2} {:>8.2} {:>10.2} {:>8.2}",
            name,
            t.mean_bandwidth_bps() / 1e6,
            s.coef_variation,
            s.peak_to_mean,
            h
        );
        rows.push(vec![
            i as f64,
            t.mean_bandwidth_bps() / 1e6,
            s.coef_variation,
            s.peak_to_mean,
            h,
        ]);
    }
    ctx.write_csv(
        "ext_genres.csv",
        "genre_index,mean_mbps,cov,peak_to_mean,rs_hurst",
        &rows,
    );
    compare(
        "videoconference H",
        "0.60-0.75 (paper §3.2.3)",
        "lowest of the four genres",
    );

    banner("Extensions — estimator battery on the default trace");
    let series = ctx.trace.frame_series();
    let lw = local_whittle(&series, None);
    let wv = wavelet_hurst(&series, Some(3), None);
    println!(
        "local Whittle (semiparametric): H = {:.3} +/- {:.3}  (m = {})",
        lw.hurst,
        1.96 * lw.std_err,
        lw.m
    );
    println!(
        "Haar wavelet logscale:          H = {:.3}  (fit R^2 = {:.3})",
        wv.hurst, wv.fit.r_squared
    );

    banner("Extensions — admission control on a 45 Mb/s link");
    let link = 45e6 / 8.0;
    let sim = admit_by_simulation(
        &ctx.trace,
        link,
        0.002,
        LossTarget::Rate(1e-3),
        LossMetric::Overall,
        16,
        5,
    );
    let s = ctx.trace.summary_frame();
    let dt = 1.0 / ctx.trace.fps();
    let a = fbm_variance_coef(s.mean, s.std_dev * s.std_dev, dt, 0.8);
    let norros = admit_by_norros(s.mean / dt, a, 0.8, link, 0.002 * link, 1e-3, 16);
    println!(
        "trace-driven: {} sources ({:.0}% utilisation)",
        sim.max_sources,
        sim.utilization * 100.0
    );
    println!(
        "Norros rule:  {} sources ({:.0}% utilisation)",
        norros.max_sources,
        norros.utilization * 100.0
    );
    compare(
        "closed form vs simulation",
        "same order of magnitude",
        &format!("{} vs {}", norros.max_sources, sim.max_sources),
    );
}
