//! Figures 13–15 and 17: trace-driven queueing simulation.

use crate::{banner, compare, Ctx};
use vbr_qsim::{LossMetric, LossTarget, MuxSim};

/// The T_max grid of Fig 14, in seconds.
fn t_max_grid(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.001, 0.002, 0.01, 0.1]
    } else {
        vec![0.0005, 0.001, 0.002, 0.005, 0.02, 0.1, 0.5]
    }
}

/// The loss-rate targets of Fig 14.
fn targets(quick: bool) -> Vec<(&'static str, LossTarget, LossMetric)> {
    let mut t = vec![
        ("P_l = 0", LossTarget::Zero, LossMetric::Overall),
        ("P_l = 1e-4", LossTarget::Rate(1e-4), LossMetric::Overall),
        ("P_l = 3e-6", LossTarget::Rate(3e-6), LossMetric::Overall),
    ];
    if !quick {
        t.push(("P_WES = 1e-3", LossTarget::Rate(1e-3), LossMetric::WorstSecond));
        t.push(("P_WES = 3e-2", LossTarget::Rate(3e-2), LossMetric::WorstSecond));
    }
    t
}

/// Fig 13: the simulated system (a structural figure — we print the
/// configuration and a sanity run).
pub fn fig13(ctx: &Ctx) {
    banner("Fig 13 — system modeled in trace-driven simulation");
    println!("N sources -> [offset wraparound copies of the trace] -> FIFO(Q bytes, C bytes/s)");
    println!("slice-level fluid arrivals (uniform cell spacing within the slice)");
    let sim = MuxSim::new(&ctx.trace, 5, 13);
    println!(
        "\nsanity run: N = 5, mean aggregate rate {:.2} Mb/s, peak slot rate {:.2} Mb/s",
        sim.mean_rate() * 8.0 / 1e6,
        sim.peak_slot_rate() * 8.0 / 1e6
    );
    let c = sim.mean_rate() * 1.2;
    let loss = sim.run(c, 0.002 * c);
    println!(
        "at C = 1.2x mean and T_max = 2 ms: P_l = {:.3e}, P_WES = {:.3e}",
        loss.p_l, loss.p_wes
    );
    compare(
        "offset rule",
        ">=1000 frames apart; 6 lag combos for N>2",
        &format!("{} combinations in use", sim.combos().len()),
    );
}

/// Fig 14: Q-C curves — queueing delay vs allocated bandwidth per source.
pub fn fig14(ctx: &Ctx) {
    banner("Fig 14 — Q-C curves (T_max vs required capacity per source)");
    let grid = t_max_grid(ctx.quick);
    let tgt = targets(ctx.quick);
    let ns: &[usize] = if ctx.quick { &[1, 5] } else { &[1, 2, 5, 20] };
    let iters = ctx.search_iters();

    let mut rows = Vec::new();
    for &n in ns {
        let sim = MuxSim::new(&ctx.trace, n, 14 + n as u64);
        println!("\nN = {n}  (mean rate/source = {:.2} Mb/s)",
            sim.mean_rate() * 8.0 / 1e6 / n as f64);
        print!("{:>14}", "T_max [ms]");
        for (name, _, _) in &tgt {
            print!(" {name:>14}");
        }
        println!();
        for &tm in &grid {
            print!("{:>14.2}", tm * 1e3);
            for (ti, (_, target, metric)) in tgt.iter().enumerate() {
                let c = sim.required_capacity(tm, *target, *metric, iters)
                    / n as f64;
                print!(" {:>13.2}M", c * 8.0 / 1e6);
                rows.push(vec![n as f64, ti as f64, tm * 1e3, c * 8.0 / 1e6]);
            }
            println!();
        }
    }
    ctx.write_csv(
        "fig14_qc_curves.csv",
        "n_sources,target_index,t_max_ms,capacity_per_source_mbps",
        &rows,
    );
    compare(
        "curve shape",
        "strong knee near a few ms; insensitive above",
        "see the capacity column flatten for T_max >= ~2-5 ms",
    );
    compare(
        "ordering",
        "stricter loss targets need more capacity at all T_max",
        "columns ordered left >= right at every row",
    );
}

/// Fig 15: statistical multiplexing gain at T_max = 2 ms.
pub fn fig15(ctx: &Ctx) {
    banner("Fig 15 — required capacity per source vs number of sources (T_max = 2 ms)");
    let ns: Vec<usize> = if ctx.quick { vec![1, 5, 20] } else { vec![1, 2, 5, 10, 20] };
    let tgt = targets(ctx.quick);
    let iters = ctx.search_iters();

    let series = ctx.trace.frame_series();
    let fps = ctx.trace.fps();
    let mean_rate = series.iter().sum::<f64>() / series.len() as f64 * fps;
    let peak_rate = series.iter().cloned().fold(0.0f64, f64::max) * fps;
    println!(
        "single source: mean {:.2} Mb/s, peak {:.2} Mb/s",
        mean_rate * 8.0 / 1e6,
        peak_rate * 8.0 / 1e6
    );

    let mut rows = Vec::new();
    print!("{:>6}", "N");
    for (name, _, _) in &tgt {
        print!(" {name:>14}");
    }
    println!(" {:>16}", "gain @ P_l=0");
    let mut gain_at_5 = Vec::new();
    for &n in &ns {
        let sim = MuxSim::new(&ctx.trace, n, 15 + n as u64);
        print!("{n:>6}");
        let mut gain0 = 0.0;
        for (ti, (_, target, metric)) in tgt.iter().enumerate() {
            let c = sim.required_capacity(0.002, *target, *metric, iters) / n as f64;
            print!(" {:>13.2}M", c * 8.0 / 1e6);
            rows.push(vec![n as f64, ti as f64, c * 8.0 / 1e6]);
            let gain = ((peak_rate - c) / (peak_rate - mean_rate)).clamp(0.0, 1.0);
            if ti == 0 {
                gain0 = gain;
            }
            if n == 5 {
                gain_at_5.push(gain);
            }
        }
        println!(" {:>15.0}%", gain0 * 100.0);
    }
    ctx.write_csv(
        "fig15_smg.csv",
        "n_sources,target_index,capacity_per_source_mbps",
        &rows,
    );
    if !gain_at_5.is_empty() {
        let avg = gain_at_5.iter().sum::<f64>() / gain_at_5.len() as f64;
        compare(
            "gain realised at N = 5 (average over targets)",
            "72% (all curves within 4%)",
            &format!("{:.0}%", avg * 100.0),
        );
    }
    compare(
        "N = 1 vs N = 20",
        "near peak rate vs near mean rate",
        "see first and last rows",
    );

    // The paper's §4.2 convolution device: the N-fold Gamma/Pareto
    // convolution predicts the bufferless allocation directly.
    use vbr_model::{estimate_trace, EstimateOptions, HurstMethod};
    use vbr_stats::dist::aggregate_marginal;
    let est = estimate_trace(
        &ctx.trace,
        &EstimateOptions { hurst_method: HurstMethod::VarianceTime, ..Default::default() },
    );
    let marginal = est.params.marginal();
    println!("\nbufferless check via the paper's 10 000-point convolution table:");
    println!("{:>6} {:>26} {:>22}", "N", "convolution q(1-1e-4)/src", "simulated (T_max->0)");
    for &n in &ns {
        let agg = aggregate_marginal(&marginal, n, 10_000);
        let conv = agg.quantile(1.0 - 1e-4) / n as f64 * fps; // bytes/s per source
        let sim = MuxSim::new(&ctx.trace, n, 151 + n as u64);
        let c = sim.required_capacity(1e-4, LossTarget::Rate(1e-4), LossMetric::Overall, iters)
            / n as f64;
        println!(
            "{n:>6} {:>24.2}M {:>20.2}M",
            conv * 8.0 / 1e6,
            c * 8.0 / 1e6
        );
    }
    println!("(agreement within ~10%: in the bufferless regime the marginal alone");
    println!(" governs the allocation — correlation, and hence H, is irrelevant there,");
    println!(" which is the §6 point that H is necessary but not sufficient)");
}

/// Fig 17: windowed error processes for N = 1 and N = 20 at equal overall
/// loss — same P_l, very different error structure.
pub fn fig17(ctx: &Ctx) {
    banner("Fig 17 — error processes at equal overall loss (P_l = 1e-3, T_max = 2 ms)");
    let window_frames = 1000usize;
    let mut rows = Vec::new();
    for &n in &[1usize, 20] {
        let sim = MuxSim::new(&ctx.trace, n, 17 + n as u64);
        let c = sim.required_capacity(
            0.002,
            LossTarget::Rate(1e-3),
            LossMetric::Overall,
            ctx.search_iters(),
        );
        let res = sim.run_single(0, c, 0.002 * c);
        let spf = ctx.trace.slices_per_frame();
        let w = res.windowed_loss(window_frames * spf);
        // Sample the windowed loss once per 100 frames for the CSV.
        for (i, &v) in w.iter().step_by(100 * spf).enumerate() {
            rows.push(vec![n as f64, (i * 100) as f64, v]);
        }
        let nonzero = w.iter().filter(|&&v| v > 0.0).count() as f64 / w.len() as f64;
        let peak = w.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "N = {n:>2}: overall P_l = {:.2e}, windows with loss: {:.1}%, \
             worst 1000-frame window: {:.2e}",
            res.loss_rate,
            nonzero * 100.0,
            peak
        );
    }
    ctx.write_csv(
        "fig17_error_process.csv",
        "n_sources,frame,windowed_loss_rate",
        &rows,
    );
    compare(
        "error structure",
        "N=1: few long severe events; N=20: more frequent, milder",
        "compare 'windows with loss' and worst-window columns",
    );
    println!("equal P_l does not mean equal perceived quality — the paper's §5.3 point.");
}
