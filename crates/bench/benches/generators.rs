//! Criterion benchmarks for the traffic generators (§4): Hosking's
//! O(n²) algorithm vs the Davies–Harte O(n log n) extension — the paper
//! reports 10 hours for 171 000 Hosking points on a 1994 workstation —
//! plus the marginal transform and the full synthetic-movie generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vbr_fgn::{DaviesHarte, Hosking, MarginalTransform, TableMode};
use vbr_model::{ModelParams, SourceModel};
use vbr_stats::dist::GammaPareto;
use vbr_video::{generate_screenplay, ScreenplayConfig};

fn bench_lrd_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("lrd_generators");
    g.sample_size(10);
    // The ablation bench DESIGN.md calls out: same output law, wildly
    // different complexity class.
    for &n in &[1_000usize, 4_000, 16_000] {
        g.bench_with_input(BenchmarkId::new("hosking", n), &n, |b, &n| {
            let gen = Hosking::new(0.8, 1.0);
            b.iter(|| gen.generate(black_box(n), 1))
        });
        g.bench_with_input(BenchmarkId::new("davies_harte", n), &n, |b, &n| {
            let gen = DaviesHarte::new(0.8, 1.0);
            b.iter(|| gen.generate(black_box(n), 1))
        });
    }
    // Full paper length — Davies–Harte only (Hosking takes minutes).
    g.bench_function("davies_harte_171000", |b| {
        let gen = DaviesHarte::new(0.8, 1.0);
        b.iter(|| gen.generate(black_box(171_000), 1))
    });
    // Repeated same-(H, n) generation hits the memoized circulant
    // spectrum; a fresh H each call forces the full rebuild.
    g.bench_function("davies_harte_171000_cold_spectrum", |b| {
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            let gen = DaviesHarte::new(0.8 + step as f64 * 1e-12, 1.0);
            gen.generate(black_box(171_000), 1)
        })
    });
    g.finish();
}

fn bench_screenplay_batch(c: &mut Criterion) {
    // Multi-source generation: 4 sources serially vs on the worker pool.
    let configs: Vec<ScreenplayConfig> =
        (0..4).map(|i| ScreenplayConfig::short(10_000, 20 + i)).collect();
    let mut g = c.benchmark_group("screenplay_batch");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            vbr_stats::par::with_threads(1, || {
                vbr_video::generate_screenplay_batch(black_box(&configs))
            })
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| vbr_video::generate_screenplay_batch(black_box(&configs)))
    });
    g.finish();
}

fn bench_marginal_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("marginal_transform");
    let target = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
    let gauss = DaviesHarte::new(0.8, 1.0).generate(171_000, 2);
    g.sample_size(10);
    g.bench_function("table_10000", |b| {
        let xf = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(10_000));
        b.iter(|| xf.map_series(black_box(&gauss)))
    });
    g.bench_function("exact", |b| {
        let xf = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Exact);
        b.iter(|| xf.map_series(black_box(&gauss)))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_generation");
    g.sample_size(10);
    g.bench_function("source_model_full_20000_frames", |b| {
        let m = SourceModel::full(ModelParams::paper_frame_defaults());
        b.iter(|| m.generate_trace(black_box(20_000), 24.0, 30, 3))
    });
    g.bench_function("screenplay_20000_frames", |b| {
        b.iter(|| generate_screenplay(&ScreenplayConfig::short(black_box(20_000), 4)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lrd_generators,
    bench_screenplay_batch,
    bench_marginal_transform,
    bench_end_to_end
);
criterion_main!(benches);
