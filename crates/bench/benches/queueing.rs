//! Criterion benchmarks for the queueing machinery of Figs 14–17: the
//! raw fluid-queue pass and a full capacity search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vbr_qsim::{FluidQueue, LossMetric, LossTarget, MuxSim};
use vbr_video::{generate_screenplay, ScreenplayConfig};

fn bench_queue_pass(c: &mut Criterion) {
    let trace = generate_screenplay(&ScreenplayConfig::short(20_000, 5));
    let mut g = c.benchmark_group("queue_pass");
    g.sample_size(10);
    for &n in &[1usize, 5, 20] {
        let sim = MuxSim::new(&trace, n, 1);
        let c_tot = sim.mean_rate() * 1.3;
        g.bench_with_input(BenchmarkId::new("mux_run_600k_slots", n), &sim, |b, sim| {
            b.iter(|| sim.run(black_box(c_tot), black_box(0.002 * c_tot)))
        });
    }
    g.finish();
}

fn bench_raw_queue(c: &mut Criterion) {
    let arrivals: Vec<f64> = (0..1_000_000)
        .map(|i| 900.0 + 300.0 * ((i as f64) * 0.001).sin())
        .collect();
    let mut g = c.benchmark_group("fluid_queue");
    g.sample_size(10);
    g.bench_function("step_1M_slots", |b| {
        b.iter(|| {
            let mut q = FluidQueue::new(10_000.0, 700_000.0);
            for &a in &arrivals {
                q.step(black_box(a), 0.001389);
            }
            q.loss_rate()
        })
    });
    g.finish();
}

fn bench_capacity_search(c: &mut Criterion) {
    // One Fig 14 point: bisection to the capacity meeting P_l <= 1e-3.
    let trace = generate_screenplay(&ScreenplayConfig::short(20_000, 6));
    let sim = MuxSim::new(&trace, 2, 2);
    let mut g = c.benchmark_group("fig14_point");
    g.sample_size(10);
    g.bench_function("required_capacity_n2", |b| {
        b.iter(|| {
            sim.required_capacity(
                black_box(0.002),
                LossTarget::Rate(1e-3),
                LossMetric::Overall,
                18,
            )
        })
    });
    g.finish();
}

fn bench_qc_sweep(c: &mut Criterion) {
    // A Fig 14 curve: the T_max grid swept serially vs on the worker pool
    // (each point is an independent bisection).
    let trace = generate_screenplay(&ScreenplayConfig::short(10_000, 8));
    let sim = MuxSim::new(&trace, 3, 3);
    let grid = [0.0005, 0.002, 0.01, 0.05];
    let mut g = c.benchmark_group("fig14_curve");
    g.sample_size(10);
    g.bench_function("qc_curve_serial", |b| {
        b.iter(|| {
            vbr_stats::par::with_threads(1, || {
                vbr_qsim::qc_curve(
                    black_box(&sim),
                    &grid,
                    LossTarget::Rate(1e-2),
                    LossMetric::Overall,
                    12,
                )
            })
        })
    });
    g.bench_function("qc_curve_parallel", |b| {
        b.iter(|| {
            vbr_qsim::qc_curve(
                black_box(&sim),
                &grid,
                LossTarget::Rate(1e-2),
                LossMetric::Overall,
                12,
            )
        })
    });
    g.finish();
}

fn bench_cell_sim(c: &mut Criterion) {
    // Cell-level (ATM) simulation of one source over a short trace.
    let trace = generate_screenplay(&ScreenplayConfig::short(2_000, 7));
    let cap = trace.mean_bandwidth_bps() / 8.0 * 1.2;
    let mut g = c.benchmark_group("cell_level");
    g.sample_size(10);
    g.bench_function("uniform_spacing_2000_frames", |b| {
        b.iter(|| {
            vbr_qsim::simulate_cells(
                black_box(&trace),
                &[0],
                cap,
                10_000.0,
                vbr_qsim::CellSpacing::Uniform,
                1,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue_pass,
    bench_raw_queue,
    bench_capacity_search,
    bench_qc_sweep,
    bench_cell_sim
);
criterion_main!(benches);
