//! Criterion benchmarks for the Hurst estimators of Table 3 and
//! Figs 11–12: variance-time, R/S and Whittle on paper-scale series.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vbr_fgn::DaviesHarte;
use vbr_lrd::{rs_analysis, variance_time, whittle_aggregated, RsOptions, VtOptions};

fn lrd_series(n: usize) -> Vec<f64> {
    DaviesHarte::new(0.8, 1.0)
        .generate(n, 7)
        .into_iter()
        .map(|v| v + 10.0)
        .collect()
}

fn bench_variance_time(c: &mut Criterion) {
    let x = lrd_series(171_000);
    let mut g = c.benchmark_group("table3_estimators");
    g.sample_size(10);
    g.bench_function("variance_time_fig11", |b| {
        b.iter(|| variance_time(black_box(&x), &VtOptions::default()))
    });
    g.bench_function("rs_analysis_fig12", |b| {
        b.iter(|| rs_analysis(black_box(&x), &RsOptions::default()))
    });
    g.bench_function("whittle_aggregated_100_700", |b| {
        b.iter(|| whittle_aggregated(black_box(&x), &[100, 700]))
    });
    g.bench_function("local_whittle", |b| {
        b.iter(|| vbr_lrd::local_whittle(black_box(&x), None))
    });
    g.bench_function("wavelet_hurst", |b| {
        b.iter(|| vbr_lrd::wavelet_hurst(black_box(&x), Some(2), None))
    });
    g.finish();
}

fn bench_whittle_objective(c: &mut Criterion) {
    // The golden-section search evaluates the objective ~200 times per
    // estimate; compare the powf-per-frequency path against the
    // precomputed log-table path for one full search's worth of evals.
    let x = lrd_series(65_536);
    let pg = vbr_stats::Periodogram::compute(&x);
    let d_grid: Vec<f64> = (0..200).map(|i| 0.001 + 0.498 * i as f64 / 199.0).collect();
    let mut g = c.benchmark_group("whittle_objective");
    g.sample_size(10);
    for model in [vbr_lrd::SpectralModel::Farima, vbr_lrd::SpectralModel::Fgn] {
        g.bench_function(format!("direct_{model:?}").to_lowercase(), |b| {
            b.iter(|| {
                d_grid
                    .iter()
                    .map(|&d| vbr_lrd::whittle_objective_direct(black_box(&pg), model, d))
                    .sum::<f64>()
            })
        });
        g.bench_function(format!("fast_{model:?}").to_lowercase(), |b| {
            b.iter(|| {
                let obj = vbr_lrd::WhittleObjective::new(black_box(&pg), model);
                d_grid.iter().map(|&d| obj.eval(d)).sum::<f64>()
            })
        });
    }
    g.finish();
}

fn bench_robust_ensemble(c: &mut Criterion) {
    // The parallel ensemble at 1 worker vs the session's worker count.
    let x = lrd_series(65_536);
    let mut g = c.benchmark_group("robust_hurst");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            vbr_stats::par::with_threads(1, || vbr_lrd::robust_hurst(black_box(&x)).unwrap())
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| vbr_lrd::robust_hurst(black_box(&x)).unwrap())
    });
    g.finish();
}

fn bench_estimate_params(c: &mut Criterion) {
    // The full 4-parameter estimation pipeline of §4.2.
    let trace =
        vbr_video::generate_screenplay(&vbr_video::ScreenplayConfig::short(40_000, 9));
    let mut g = c.benchmark_group("model_estimation");
    g.sample_size(10);
    g.bench_function("estimate_trace_40000", |b| {
        b.iter(|| {
            vbr_model::estimate_trace(
                black_box(&trace),
                &vbr_model::EstimateOptions {
                    hurst_method: vbr_model::HurstMethod::VarianceTime,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_variance_time,
    bench_whittle_objective,
    bench_robust_ensemble,
    bench_estimate_params
);
criterion_main!(benches);
