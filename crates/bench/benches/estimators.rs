//! Criterion benchmarks for the Hurst estimators of Table 3 and
//! Figs 11–12: variance-time, R/S and Whittle on paper-scale series.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vbr_fgn::DaviesHarte;
use vbr_lrd::{rs_analysis, variance_time, whittle_aggregated, RsOptions, VtOptions};

fn lrd_series(n: usize) -> Vec<f64> {
    DaviesHarte::new(0.8, 1.0)
        .generate(n, 7)
        .into_iter()
        .map(|v| v + 10.0)
        .collect()
}

fn bench_variance_time(c: &mut Criterion) {
    let x = lrd_series(171_000);
    let mut g = c.benchmark_group("table3_estimators");
    g.sample_size(10);
    g.bench_function("variance_time_fig11", |b| {
        b.iter(|| variance_time(black_box(&x), &VtOptions::default()))
    });
    g.bench_function("rs_analysis_fig12", |b| {
        b.iter(|| rs_analysis(black_box(&x), &RsOptions::default()))
    });
    g.bench_function("whittle_aggregated_100_700", |b| {
        b.iter(|| whittle_aggregated(black_box(&x), &[100, 700]))
    });
    g.bench_function("local_whittle", |b| {
        b.iter(|| vbr_lrd::local_whittle(black_box(&x), None))
    });
    g.bench_function("wavelet_hurst", |b| {
        b.iter(|| vbr_lrd::wavelet_hurst(black_box(&x), 2, None))
    });
    g.finish();
}

fn bench_estimate_params(c: &mut Criterion) {
    // The full 4-parameter estimation pipeline of §4.2.
    let trace =
        vbr_video::generate_screenplay(&vbr_video::ScreenplayConfig::short(40_000, 9));
    let mut g = c.benchmark_group("model_estimation");
    g.sample_size(10);
    g.bench_function("estimate_trace_40000", |b| {
        b.iter(|| {
            vbr_model::estimate_trace(
                black_box(&trace),
                &vbr_model::EstimateOptions {
                    hurst_method: vbr_model::HurstMethod::VarianceTime,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_variance_time, bench_estimate_params);
criterion_main!(benches);
