//! Criterion benchmarks for the numerical kernels behind Figs 7–8
//! (autocorrelation, periodogram) and everything FFT-based.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vbr_stats::rng::Xoshiro256;

fn series(n: usize) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(1);
    (0..n).map(|_| rng.standard_normal() + 10.0).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[1024usize, 16_384, 262_144] {
        let x: Vec<vbr_fft::Complex> = series(n)
            .into_iter()
            .map(vbr_fft::Complex::from_re)
            .collect();
        g.bench_with_input(BenchmarkId::new("pow2", n), &x, |b, x| {
            b.iter(|| vbr_fft::fft(black_box(x)))
        });
    }
    // Bluestein path: prime length.
    let x: Vec<vbr_fft::Complex> = series(10_007)
        .into_iter()
        .map(vbr_fft::Complex::from_re)
        .collect();
    g.bench_function("bluestein_10007", |b| b.iter(|| vbr_fft::fft(black_box(&x))));
    g.finish();
}

fn bench_acf(c: &mut Criterion) {
    // Fig 7 workload: lag-10 000 ACF of the 171 000-frame series.
    let x = series(171_000);
    let mut g = c.benchmark_group("acf_fig7");
    g.sample_size(10);
    g.bench_function("fft_based_lag10000", |b| {
        b.iter(|| vbr_stats::autocorrelation(black_box(&x), 10_000))
    });
    let small = series(20_000);
    g.bench_function("direct_lag100_n20000", |b| {
        b.iter(|| vbr_stats::acf::autocorrelation_direct(black_box(&small), 100))
    });
    g.finish();
}

fn bench_periodogram(c: &mut Criterion) {
    // Fig 8 workload.
    let x = series(171_000);
    let mut g = c.benchmark_group("periodogram_fig8");
    g.sample_size(10);
    g.bench_function("full_trace", |b| {
        b.iter(|| vbr_stats::Periodogram::compute(black_box(&x)))
    });
    g.finish();
}

fn bench_fft_plan(c: &mut Criterion) {
    // The plan cache: rebuilding tables per call vs the cached hit.
    let mut g = c.benchmark_group("fft_plan");
    for &n in &[16_384usize, 262_144] {
        let input: Vec<vbr_fft::Complex> = series(n)
            .into_iter()
            .map(vbr_fft::Complex::from_re)
            .collect();
        let mut buf = input.clone();
        g.bench_with_input(BenchmarkId::new("cold_build", n), &n, |b, &n| {
            b.iter(|| {
                buf.copy_from_slice(&input);
                let plan = vbr_fft::FftPlan::new(black_box(n));
                plan.process(&mut buf, vbr_fft::Direction::Forward);
            })
        });
        g.bench_with_input(BenchmarkId::new("cached", n), &n, |b, &n| {
            b.iter(|| {
                buf.copy_from_slice(&input);
                let plan = vbr_fft::plan_for(black_box(n));
                plan.process(&mut buf, vbr_fft::Direction::Forward);
            })
        });
    }
    g.finish();
}

fn bench_special(c: &mut Criterion) {
    let mut g = c.benchmark_group("special_functions");
    g.bench_function("norm_quantile", |b| {
        let mut p = 0.0001f64;
        b.iter(|| {
            p = if p > 0.999 { 0.0001 } else { p + 0.000017 };
            vbr_stats::special::norm_quantile(black_box(p))
        })
    });
    g.bench_function("gamma_p", |b| {
        let mut x = 0.1f64;
        b.iter(|| {
            x = if x > 60.0 { 0.1 } else { x + 0.013 };
            vbr_stats::special::gamma_p(black_box(19.7), black_box(x))
        })
    });
    g.finish();
}

fn bench_kernels_simd(c: &mut Criterion) {
    // The four blocked kernels against their scalar twins, fine-grained.
    let mut g = c.benchmark_group("kernels_simd");
    let n = 1usize << 16;

    // Bulk standard normals: per-sample scalar draws vs the batch fill.
    let mut buf = vec![0.0f64; n];
    g.bench_function("normal_scalar_64k", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256::seed_from_u64(2);
            for x in buf.iter_mut() {
                *x = rng.standard_normal();
            }
            black_box(buf[n - 1]);
        })
    });
    g.bench_function("normal_batch_64k", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256::seed_from_u64(2);
            rng.fill_standard_normal(&mut buf);
            black_box(buf[n - 1]);
        })
    });

    // Blocked quantile kernel vs per-element evaluation.
    let ps: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
    g.bench_function("quantile_scalar_64k", |b| {
        b.iter(|| {
            for (o, &p) in buf.iter_mut().zip(&ps) {
                *o = vbr_stats::norm_quantile(p);
            }
            black_box(buf[n - 1]);
        })
    });
    g.bench_function("quantile_slice_64k", |b| {
        b.iter(|| {
            buf.copy_from_slice(&ps);
            vbr_stats::norm_quantile_slice(&mut buf);
            black_box(buf[n - 1]);
        })
    });

    // Radix-4 SoA butterflies vs the scalar radix-2 twin.
    let fft_n = 1usize << 14;
    let input: Vec<vbr_fft::Complex> = series(fft_n)
        .into_iter()
        .map(vbr_fft::Complex::from_re)
        .collect();
    let mut cbuf = input.clone();
    let plan = vbr_fft::plan_for(fft_n);
    g.bench_function("fft_radix2_scalar_16k", |b| {
        b.iter(|| {
            cbuf.copy_from_slice(&input);
            vbr_fft::reference_radix2(&mut cbuf, vbr_fft::Direction::Forward);
        })
    });
    g.bench_function("fft_radix4_soa_16k", |b| {
        b.iter(|| {
            cbuf.copy_from_slice(&input);
            plan.process(&mut cbuf, vbr_fft::Direction::Forward);
        })
    });

    // FIFO recurrence: per-slot step vs the block pass.
    let arrivals: Vec<f64> = series(n).iter().map(|v| v.abs() * 1e4).collect();
    let dt = 1.0 / (24.0 * 30.0);
    let cap = 27_791.0 / dt * 1.2;
    g.bench_function("queue_step_64k", |b| {
        b.iter(|| {
            let mut q = vbr_qsim::FluidQueue::new(1e6, cap);
            let mut loss = 0.0;
            for &a in &arrivals {
                loss += q.step(a, dt);
            }
            black_box(loss);
        })
    });
    g.bench_function("queue_step_block_64k", |b| {
        b.iter(|| {
            let mut q = vbr_qsim::FluidQueue::new(1e6, cap);
            let mut loss = 0.0;
            for chunk in arrivals.chunks(4096) {
                loss += q.step_block(chunk, dt);
            }
            black_box(loss);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_fft_plan,
    bench_acf,
    bench_periodogram,
    bench_special,
    bench_kernels_simd
);
criterion_main!(benches);
