//! Fleet kill/resume and migration drills: a whole-shard checkpoint
//! survives process death and every file-corruption mode, and the
//! restored fleet — even after migrating a shard's sources to a
//! different shard — continues the aggregate arrival sequence
//! bit-identically.

use vbr_bench::{CheckpointStore, FaultInjector, FileCorruption, KillPoint, Recovery, TraceDigest};
use vbr_serve::{Fleet, FleetConfig, SourceModel, TenantSpec};

const BLOCK: usize = 16;
const SLOTS_TOTAL: u64 = 12;
const CKPT_AT: u64 = 5;

fn cfg() -> FleetConfig {
    FleetConfig::fixed(3, BLOCK, 1024)
}

fn build_fleet() -> Fleet {
    let mut fleet = Fleet::new(cfg());
    for t in 0..13u64 {
        let hurst = match t % 3 {
            0 => 0.85,
            1 => 0.7,
            _ => 0.55,
        };
        fleet
            .admit(TenantSpec {
                tenant: t,
                model: SourceModel::Fgn { hurst },
                variance: 1.0 + (t % 2) as f64,
                block: BLOCK,
                overlap: None,
                seed: t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED,
            })
            .unwrap();
    }
    fleet
}

/// Digest of slots `[from, to)` of the uninterrupted run, plus the
/// snapshot bytes taken at slot `CKPT_AT`.
fn reference_run() -> (u64, Vec<u8>) {
    let mut fleet = build_fleet();
    let mut slot = vec![0.0; BLOCK];
    let mut snapshot = None;
    let mut tail = TraceDigest::new();
    for s in 0..SLOTS_TOTAL {
        if s == CKPT_AT {
            snapshot = Some(fleet.snapshot());
        }
        fleet.advance_slot(&mut slot);
        if s >= CKPT_AT {
            tail.update(&slot);
        }
    }
    (tail.value(), snapshot.expect("checkpoint slot reached"))
}

fn decode(bytes: &[u8]) -> Result<(u64, Fleet), vbr_stats::snapshot::SnapshotError> {
    let fleet = Fleet::restore(cfg(), bytes)?;
    Ok((fleet.slots_done(), fleet))
}

/// Runs the restored fleet to `SLOTS_TOTAL` and digests the tail.
fn finish(mut fleet: Fleet) -> u64 {
    let mut slot = vec![0.0; BLOCK];
    let mut tail = TraceDigest::new();
    for _ in fleet.slots_done()..SLOTS_TOTAL {
        fleet.advance_slot(&mut slot);
        tail.update(&slot);
    }
    tail.value()
}

#[test]
fn kill_and_resume_continues_bit_identically() {
    let (want, _) = reference_run();
    let dir = std::env::temp_dir().join(format!("fleet_drill_kill_{}", std::process::id()));
    let store = CheckpointStore::new(&dir).unwrap();

    // "Crashed" producer: checkpoints at CKPT_AT, dies two slots later
    // at the kill point without checkpointing again.
    {
        let mut fleet = build_fleet();
        let mut kill = KillPoint::new(Some(CKPT_AT + 2));
        let mut slot = vec![0.0; BLOCK];
        for s in 0..SLOTS_TOTAL {
            if kill.advance(1) {
                break; // the simulated SIGKILL
            }
            if s == CKPT_AT {
                let bytes = fleet.snapshot();
                store.write_bytes(&bytes, fleet.slots_done()).unwrap();
            }
            fleet.advance_slot(&mut slot);
        }
        assert_eq!(kill.seen(), CKPT_AT + 2, "the drill must actually die mid-run");
    }

    // Survivor: recover, then continue. The two post-checkpoint slots
    // the dead process generated are regenerated identically.
    let fleet = match store.recover_with(decode) {
        Recovery::Latest { seq, state } => {
            assert_eq!(seq, CKPT_AT);
            state
        }
        other => panic!("expected a clean latest-generation recovery, got damage: {other:?}"),
    };
    assert_eq!(finish(fleet), want, "resumed fleet diverged from the uninterrupted run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_checkpoints_degrade_and_never_panic() {
    let (want, bytes) = reference_run();
    let inj = FaultInjector::new(0xD1CE);

    for (i, mode) in FileCorruption::ALL.into_iter().enumerate() {
        // Every corruption mode on the raw snapshot is a typed refusal.
        let bad = inj.apply_bytes(&bytes, mode);
        assert!(
            Fleet::restore(cfg(), &bad).is_err(),
            "corruption mode {mode:?} must not decode"
        );

        // Through the store ladder: newest generation corrupted, the
        // older intact one restores and continues bit-identically.
        let dir = std::env::temp_dir()
            .join(format!("fleet_drill_corrupt_{}_{i}", std::process::id()));
        let store = CheckpointStore::new(&dir).unwrap();
        store.write_bytes(&bytes, CKPT_AT).unwrap();
        store.write_bytes(&bad, CKPT_AT + 1).unwrap();
        match store.recover_with(decode) {
            Recovery::Previous { seq, state, damaged } => {
                assert_eq!(seq, CKPT_AT);
                assert_eq!(damaged, 1);
                assert_eq!(finish(state), want, "fallback generation diverged ({mode:?})");
            }
            other => panic!("expected fallback to the intact generation, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn migration_after_restore_continues_bit_identically() {
    let (want, bytes) = reference_run();
    // Restore on the "new host", migrate shard 0's sources onto shard 2
    // (the whole-shard migration path), and continue: same bits.
    let mut fleet = Fleet::restore(cfg(), &bytes).unwrap();
    fleet.migrate_shard(0, 2).unwrap();
    assert_eq!(fleet.shard_loads()[0], 0, "shard 0 must be empty after migration");
    assert_eq!(fleet.sources(), 13);
    assert_eq!(finish(fleet), want, "migrated fleet diverged from the uninterrupted run");

    // And a snapshot taken *after* migration round-trips too.
    let mut fleet = Fleet::restore(cfg(), &bytes).unwrap();
    fleet.migrate_shard(0, 1).unwrap();
    let rebytes = fleet.snapshot();
    let refleet = Fleet::restore(cfg(), &rebytes).unwrap();
    assert_eq!(finish(refleet), want, "re-snapshotted migrated fleet diverged");
}
