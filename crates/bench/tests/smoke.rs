//! Smoke tests for the reproduction harness: every cheap experiment runs
//! to completion on a small trace and writes its CSV outputs.

use vbr_bench::{experiments, Ctx};

fn small_ctx(tag: &str) -> Ctx {
    let dir = std::env::temp_dir().join(format!("vbr_repro_smoke_{tag}"));
    // Clean slate so the cache path is exercised both ways.
    let _ = std::fs::remove_dir_all(&dir);
    Ctx::new(6_000, 7, dir, true)
}

#[test]
fn tables_run() {
    let ctx = small_ctx("tables");
    for id in ["table1", "table2", "table3"] {
        assert!(experiments::run(&ctx, id), "{id} unknown");
    }
}

#[test]
fn cheap_figures_run_and_write_csv() {
    let ctx = small_ctx("figs");
    for id in ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
               "fig10", "fig11", "fig12"] {
        assert!(experiments::run(&ctx, id), "{id} unknown");
    }
    // Spot-check a few outputs exist and are non-trivial.
    for f in ["fig1_timeseries.csv", "fig7_acf.csv", "fig11_variance_time.csv"] {
        let path = ctx.out_dir.join(f);
        let meta = std::fs::metadata(&path).unwrap_or_else(|e| {
            panic!("missing {}: {e}", path.display());
        });
        assert!(meta.len() > 100, "{f} suspiciously small");
    }
}

#[test]
fn unknown_id_is_rejected() {
    let ctx = small_ctx("unknown");
    assert!(!experiments::run(&ctx, "fig99"));
}

#[test]
fn trace_cache_is_reused() {
    let dir = std::env::temp_dir().join("vbr_repro_smoke_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let a = Ctx::new(2_000, 3, dir.clone(), true);
    let first = a.trace.clone();
    // Second construction must load the cached file and agree exactly.
    let b = Ctx::new(2_000, 3, dir, true);
    assert_eq!(first, b.trace);
}
