//! Serial-vs-parallel determinism suite: the worker pool
//! (`vbr_stats::par`) must produce output bit-identical to the serial
//! path at every thread count, for every parallelized pipeline stage —
//! estimation, generation, and queueing — including on fault-injected
//! input where the *failure pattern* must also be thread-count-invariant.
//!
//! `with_threads` pins the pool width thread-locally, so the property
//! runs are themselves deterministic regardless of `VBR_THREADS`.

use proptest::prelude::*;
use vbr_bench::{Corruption, FaultInjector};
use vbr_fgn::DaviesHarte;
use vbr_lrd::robust_hurst;
use vbr_qsim::{qc_curve, LossMetric, LossTarget, MuxSim};
use vbr_stats::par::{par_map, par_map_with, with_threads};
use vbr_video::{generate_screenplay_batch, ScreenplayConfig, Trace};

/// Thread counts exercised by every property: serial, small pool,
/// oversubscribed pool (8 workers on any host).
const THREADS: [usize; 3] = [1, 2, 8];

/// Bit-exact view of a float series (NaN-safe comparison).
fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// A compact, bit-exact signature of a `robust_hurst` outcome, covering
/// successes, per-estimator values, and the typed failure list.
fn hurst_signature(xs: &[f64]) -> Vec<String> {
    match robust_hurst(xs) {
        Ok(r) => {
            let mut sig = vec![format!("by:{:?}:{:016x}", r.by, r.hurst.to_bits())];
            sig.extend(
                r.estimates.iter().map(|(k, h)| format!("est:{k:?}:{:016x}", h.to_bits())),
            );
            sig.extend(r.failures.iter().map(|(k, e)| format!("fail:{k:?}:{e:?}")));
            sig
        }
        Err(e) => vec![format!("err:{e:?}")],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The primitive itself: `par_map_with` at any width equals the
    /// serial map, element for element, on a non-associative reduction.
    #[test]
    fn par_map_matches_serial_bitwise(seed in 0u64..1000, n in 0usize..200) {
        let items: Vec<f64> = DaviesHarte::new(0.7, 1.0).generate(n, seed);
        let f = |&x: &f64| {
            // Deliberately order-sensitive float chain.
            let mut acc = x;
            for k in 1..20 {
                acc = acc * 1.0000001 + (x / k as f64).sin();
            }
            acc
        };
        let serial: Vec<f64> = items.iter().map(f).collect();
        for &t in &THREADS {
            let par = par_map_with(t, &items, f);
            prop_assert_eq!(bits(&par), bits(&serial), "threads={}", t);
        }
    }

    /// Estimation: the ensemble estimator's full outcome (headline,
    /// per-member estimates, failures) is thread-count-invariant.
    #[test]
    fn estimation_is_thread_count_invariant(seed in 0u64..200) {
        let xs = DaviesHarte::new(0.8, 1.0).generate(4_096, seed);
        let reference = with_threads(1, || hurst_signature(&xs));
        for &t in &THREADS[1..] {
            let got = with_threads(t, || hurst_signature(&xs));
            prop_assert_eq!(&got, &reference, "threads={}", t);
        }
    }

    /// Estimation under injected faults: which estimators fail, and with
    /// what typed error, must not depend on the pool width.
    #[test]
    fn faulted_estimation_is_thread_count_invariant(
        seed in 0u64..100,
        inj_seed in 0u64..100,
        mode_idx in 0usize..5,
    ) {
        let clean = DaviesHarte::new(0.8, 1.0).generate(2_048, seed);
        let shifted: Vec<f64> = clean.iter().map(|v| v + 50.0).collect();
        let bad = FaultInjector::new(inj_seed).apply(&shifted, Corruption::ALL[mode_idx]);
        let reference = with_threads(1, || hurst_signature(&bad));
        for &t in &THREADS[1..] {
            let got = with_threads(t, || hurst_signature(&bad));
            prop_assert_eq!(&got, &reference, "threads={} mode={:?}", t, Corruption::ALL[mode_idx]);
        }
    }

    /// Generation: the parallel screenplay batch equals the serial batch.
    #[test]
    fn generation_is_thread_count_invariant(seed in 0u64..100) {
        let configs = vec![
            ScreenplayConfig::short(600, seed),
            ScreenplayConfig::short(600, seed ^ 1),
            ScreenplayConfig::short(600, seed ^ 2),
        ];
        let reference: Vec<Trace> = with_threads(1, || generate_screenplay_batch(&configs));
        for &t in &THREADS[1..] {
            let got = with_threads(t, || generate_screenplay_batch(&configs));
            prop_assert_eq!(&got, &reference, "threads={}", t);
        }
    }

    /// Queueing: MuxSim construction, loss metrics and the Q-C sweep are
    /// thread-count-invariant.
    #[test]
    fn queueing_is_thread_count_invariant(seed in 0u64..50, n_sources in 1usize..5) {
        let trace = with_threads(1, || {
            vbr_video::generate_screenplay(&ScreenplayConfig::short(1_500, seed))
        });
        let signature = |t: usize| {
            with_threads(t, || {
                let sim = MuxSim::new(&trace, n_sources, seed ^ 7);
                let cap = sim.mean_rate() * 1.15;
                let loss = sim.run(cap, 0.002 * cap);
                let curve = qc_curve(
                    &sim,
                    &[0.001, 0.01],
                    LossTarget::Rate(1e-2),
                    LossMetric::Overall,
                    5,
                );
                let mut sig = vec![loss.p_l.to_bits(), loss.p_wes.to_bits()];
                sig.extend(curve.iter().map(|p| p.capacity_per_source.to_bits()));
                sig
            })
        };
        let reference = signature(1);
        for &t in &THREADS[1..] {
            prop_assert_eq!(signature(t), reference.clone(), "threads={}", t);
        }
    }
}

/// Non-proptest sanity: nested parallel sections (Q-C sweep calling
/// `MuxSim::run`) still match serial output exactly — the nesting guard
/// must not change results, only scheduling.
#[test]
fn nested_parallelism_matches_serial() {
    let trace = vbr_video::generate_screenplay(&ScreenplayConfig::short(2_000, 3));
    let sim = MuxSim::new(&trace, 3, 4);
    let grid = [0.0005, 0.005, 0.05];
    let run = |t: usize| {
        with_threads(t, || {
            qc_curve(&sim, &grid, LossTarget::Rate(1e-2), LossMetric::Overall, 8)
                .iter()
                .map(|p| p.capacity_per_source.to_bits())
                .collect::<Vec<u64>>()
        })
    };
    let serial = run(1);
    assert_eq!(run(2), serial);
    assert_eq!(run(8), serial);
}

/// The estimator chain order (and therefore the headline pick) survives
/// parallel scheduling: Whittle stays first on a clean long series.
#[test]
fn headline_estimator_is_chain_order_not_finish_order() {
    let xs = DaviesHarte::new(0.8, 1.0).generate(8_192, 1);
    for &t in &THREADS {
        let r = with_threads(t, || robust_hurst(&xs).unwrap());
        assert_eq!(r.by, vbr_lrd::EstimatorKind::Whittle, "threads={t}");
    }
}

/// `par_map` on an empty and singleton input at every width.
#[test]
fn par_map_edge_cases() {
    let empty: Vec<f64> = vec![];
    assert!(par_map(&empty, |&x: &f64| x * 2.0).is_empty());
    for &t in &THREADS {
        assert_eq!(par_map_with(t, &[42.0f64], |&x| x + 1.0), vec![43.0]);
    }
}
