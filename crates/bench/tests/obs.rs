//! The observability determinism contract: installing the span
//! collector must leave every pipeline output bit-identical —
//! instrumentation is write-only and never branches on collected data.
//!
//! The collector is process-global, so the on/off comparisons serialize
//! on one mutex (the cargo test harness runs these `#[test]`s on
//! threads of a single process).

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use vbr_fgn::DaviesHarte;
use vbr_lrd::robust_hurst;
use vbr_qsim::{FluidQueue, MuxSim};
use vbr_stats::obs;
use vbr_video::{generate_screenplay, ScreenplayConfig};

/// Serializes every test that installs/uninstalls the process-global
/// collector.
fn collector_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap()
}

/// Runs `f` twice — collector off, then installed — and returns both
/// results for bit-comparison.
fn with_and_without_collector<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = collector_lock();
    obs::uninstall_collector();
    let off = f();
    obs::install_collector(4096);
    let on = f();
    obs::uninstall_collector();
    (off, on)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn collector_leaves_davies_harte_bit_identical(
        h in 0.55f64..0.9,
        n in 64usize..2048,
        seed in 0u64..1000,
    ) {
        let (off, on) = with_and_without_collector(|| {
            DaviesHarte::new(h, 1.0).generate(n, seed)
        });
        prop_assert_eq!(off, on);
    }

    #[test]
    fn collector_leaves_robust_hurst_bit_identical(h in 0.6f64..0.85, seed in 0u64..100) {
        let xs = DaviesHarte::new(h, 1.0).generate(4096, seed);
        let (off, on) = with_and_without_collector(|| {
            let r = robust_hurst(&xs).expect("clean series must estimate");
            let mut sig: Vec<u64> = vec![r.hurst.to_bits(), r.attempts.len() as u64];
            sig.extend(r.estimates.iter().map(|&(_, est)| est.to_bits()));
            sig
        });
        prop_assert_eq!(off, on);
    }

    #[test]
    fn collector_leaves_fluid_queue_bit_identical(seed in 0u64..1000, buffer in 10.0f64..500.0) {
        let arrivals = DaviesHarte::new(0.8, 1.0).generate(2048, seed);
        let arrivals: Vec<f64> = arrivals.iter().map(|g| g.abs() * 100.0).collect();
        let (off, on) = with_and_without_collector(|| {
            let mut q = FluidQueue::new(buffer, 3_000.0);
            let mut loss = 0.0;
            for chunk in arrivals.chunks(256) {
                loss += q.step_block(chunk, 0.001);
            }
            [loss.to_bits(), q.backlog().to_bits(), q.lost().to_bits(), q.served().to_bits()]
        });
        prop_assert_eq!(off, on);
    }

    #[test]
    fn collector_leaves_mux_run_bit_identical(n_sources in 1usize..4, seed in 0u64..50) {
        let trace = generate_screenplay(&ScreenplayConfig::short(1_500, seed));
        let sim = MuxSim::new(&trace, n_sources, seed);
        let cap = sim.mean_rate() * 1.2;
        let (off, on) = with_and_without_collector(|| {
            let l = sim.run(cap, 0.002 * cap);
            (l.p_l.to_bits(), l.p_wes.to_bits())
        });
        prop_assert_eq!(off, on);
    }
}

/// With a collector installed the traced pipeline actually produces
/// spans — the on/off equality above is not vacuous.
#[test]
fn collector_records_pipeline_spans() {
    let _guard = collector_lock();
    obs::install_collector(1024);
    DaviesHarte::new(0.8, 1.0).generate(512, 3);
    let snap = obs::uninstall_collector().expect("collector installed");
    assert!(
        snap.records.iter().any(|r| r.name == "fgn.davies_harte"),
        "traced generation must record its span"
    );
}
