//! Crash-recovery suite for the checkpoint/restore subsystem
//! (DESIGN.md §13). Three property families:
//!
//! 1. **Bit-identical resume**: killing a stream (fGn, F-ARIMA, or the
//!    single-pass mux → queue composition) at an arbitrary point,
//!    serializing its state through the snapshot wire format, and
//!    restoring into a freshly built twin reproduces the uninterrupted
//!    run bit for bit — across non-default block and overlap sizes.
//! 2. **Hostile bytes**: every file-corruption mode (truncation, torn
//!    tail, bit flips) against a real snapshot yields a typed error or
//!    a documented fallback, never a panic and never silent acceptance.
//! 3. **Store ladder**: the two-generation store walks its degradation
//!    ladder under corruption and stale-swap attacks.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use vbr_bench::checkpoint::{CheckpointStore, PipelineState, Recovery, TraceDigest};
use vbr_bench::faults::{FaultInjector, FileCorruption};
use vbr_fgn::{FarimaStream, FgnStream, StreamState};
use vbr_qsim::{ArrivalCursor, CursorState, FluidQueue, LagCombination, QueueState};
use vbr_stats::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use vbr_video::{generate_screenplay, ScreenplayConfig};

/// Serializes a stream state through the real wire format and decodes
/// it back — the restore path a process restart actually takes.
fn wire_round_trip_stream(st: &StreamState) -> StreamState {
    let mut w = SnapshotWriter::new(0x57, 0);
    w.section(1, |p| st.encode(p));
    let bytes = w.finish();
    let mut r = SnapshotReader::open(&bytes).expect("own bytes must open");
    let mut s = r.section(1, "stream").expect("section");
    let got = StreamState::decode(&mut s).expect("decode");
    s.finish().expect("no trailing bytes");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill an fGn stream after `pre` samples, snapshot, restore into a
    /// fresh same-config stream, finish both — bit-identical, for
    /// non-default block and overlap geometries.
    #[test]
    fn fgn_kill_restore_finish_is_bit_identical(
        block in 2usize..96,
        overlap_frac in 0.0f64..1.0,
        pre in 1usize..300,
        post in 1usize..300,
        seed in 0u64..1000,
    ) {
        let overlap = ((block as f64 * overlap_frac) as usize).min(block);
        let mut full = FgnStream::with_overlap(0.8, 1.0, block, overlap, seed);
        let mut want = vec![0.0f64; pre + post];
        full.next_block(&mut want);

        let mut dying = FgnStream::with_overlap(0.8, 1.0, block, overlap, seed);
        let mut head = vec![0.0f64; pre];
        dying.next_block(&mut head);
        prop_assert_eq!(&head[..], &want[..pre]);
        let st = wire_round_trip_stream(&dying.export_state());
        drop(dying); // the "kill": only the serialized state survives

        let mut resumed = FgnStream::with_overlap(0.8, 1.0, block, overlap, seed);
        resumed.restore_state(&st).expect("clean state must restore");
        let mut tail = vec![0.0f64; post];
        resumed.next_block(&mut tail);
        let want_bits: Vec<u64> = want[pre..].iter().map(|x| x.to_bits()).collect();
        let got_bits: Vec<u64> = tail.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(want_bits, got_bits);
    }

    /// Same property for the F-ARIMA stream.
    #[test]
    fn farima_kill_restore_finish_is_bit_identical(
        block in 2usize..64,
        overlap in 0usize..16,
        pre in 1usize..200,
        post in 1usize..200,
        seed in 0u64..1000,
    ) {
        let overlap = overlap.min(block);
        let mut full = FarimaStream::try_with_overlap(0.8, 1.0, block, overlap, seed).unwrap();
        let mut want = vec![0.0f64; pre + post];
        full.next_block(&mut want);

        let mut dying = FarimaStream::try_with_overlap(0.8, 1.0, block, overlap, seed).unwrap();
        let mut head = vec![0.0f64; pre];
        dying.next_block(&mut head);
        let st = wire_round_trip_stream(&dying.export_state());
        drop(dying);

        let mut resumed = FarimaStream::try_with_overlap(0.8, 1.0, block, overlap, seed).unwrap();
        resumed.restore_state(&st).expect("clean state must restore");
        let mut tail = vec![0.0f64; post];
        resumed.next_block(&mut tail);
        let want_bits: Vec<u64> = want[pre..].iter().map(|x| x.to_bits()).collect();
        let got_bits: Vec<u64> = tail.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(want_bits, got_bits);
    }

    /// The single-pass mux → queue composition (what `MuxSim::run`
    /// executes per lag combination): kill at an arbitrary slot,
    /// serialize cursor + queue state, restore both, finish — final
    /// queue accounting is bit-identical to the uninterrupted sweep.
    #[test]
    fn mux_queue_kill_restore_is_bit_identical(
        n_sources in 1usize..5,
        kill_slot in 1usize..400,
        chunk in 1usize..70,
        seed in 0u64..100,
    ) {
        let trace = generate_screenplay(&ScreenplayConfig::short(50, seed));
        let n = trace.slice_bytes().len();
        let offsets: Vec<usize> = (0..n_sources).map(|i| (i * 17) % trace.frames()).collect();
        let lags = LagCombination { offsets };
        let dt = trace.slice_duration();
        let cap = 30_000.0 / dt;
        let buffer = 5_000.0;
        let kill_slot = kill_slot.min(n.saturating_sub(1)).max(1);

        // Uninterrupted single-pass sweep.
        let mut cursor = ArrivalCursor::new(&trace, &lags);
        let mut q = FluidQueue::new(buffer, cap);
        let mut buf = vec![0.0f64; chunk];
        loop {
            let k = cursor.next_block(&mut buf);
            if k == 0 { break; }
            q.step_block(&buf[..k], dt);
        }
        let want = q.export_state();

        // Killed sweep: stop at kill_slot, serialize, restore, finish.
        let mut cursor = ArrivalCursor::new(&trace, &lags);
        let mut q = FluidQueue::new(buffer, cap);
        let mut left = kill_slot;
        while left > 0 {
            let take = left.min(buf.len());
            let k = cursor.next_block(&mut buf[..take]);
            if k == 0 { break; }
            q.step_block(&buf[..k], dt);
            left -= k;
        }
        let mut w = SnapshotWriter::new(0x4D, 3);
        w.section(1, |p| cursor.export_state().encode(p));
        w.section(2, |p| q.export_state().encode(p));
        let bytes = w.finish();
        drop((cursor, q));

        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut s = r.section(1, "cursor").unwrap();
        let cst = CursorState::decode(&mut s).unwrap();
        s.finish().unwrap();
        let mut s = r.section(2, "queue").unwrap();
        let qst = QueueState::decode(&mut s).unwrap();
        s.finish().unwrap();

        let mut cursor = ArrivalCursor::new(&trace, &lags);
        cursor.restore_state(&cst).expect("cursor state");
        let mut q = FluidQueue::new(buffer, cap);
        q.restore_state(&qst).expect("queue state");
        loop {
            let k = cursor.next_block(&mut buf);
            if k == 0 { break; }
            q.step_block(&buf[..k], dt);
        }
        let got = q.export_state();
        prop_assert_eq!(got.backlog.to_bits(), want.backlog.to_bits());
        prop_assert_eq!(got.arrived.to_bits(), want.arrived.to_bits());
        prop_assert_eq!(got.lost.to_bits(), want.lost.to_bits());
        prop_assert_eq!(got.served.to_bits(), want.served.to_bits());
    }

    /// Every file-corruption mode at every seed: decoding hostile bytes
    /// is a typed error (or, vanishingly rarely for a bit flip that
    /// lands outside any checked region — impossible here since every
    /// byte is covered by a CRC — a valid state). Never a panic.
    #[test]
    fn hostile_snapshot_bytes_never_panic(seed in 0u64..200) {
        let state = sample_pipeline_state();
        let bytes = state.encode(0xC0FFEE, 5);
        let inj = FaultInjector::new(seed);
        for mode in FileCorruption::ALL {
            let bad = inj.apply_bytes(&bytes, mode);
            let out = catch_unwind(AssertUnwindSafe(|| {
                PipelineState::decode(&bad, 0xC0FFEE).err()
            }));
            let err = out.expect("decode must not panic");
            prop_assert!(err.is_some(), "{mode:?} with seed {seed} was silently accepted");
        }
    }
}

/// A realistic pipeline state captured from a short live run.
fn sample_pipeline_state() -> PipelineState {
    let mut src = FgnStream::new(0.8, 1.0, 64, 7);
    let mut buf = vec![0.0f64; 100];
    src.next_block(&mut buf);
    let mut q = FluidQueue::new(1e4, 1e6);
    let mut digest = TraceDigest::new();
    digest.update(&buf);
    let mut total = 0.0;
    for &a in &buf {
        let a = a.abs() * 1e3;
        total += a;
        q.step(a, 1e-3);
    }
    PipelineState {
        slices_done: 100,
        total_bytes: total,
        digest: digest.value(),
        checkpoint_writes: 1,
        stream: src.export_state(),
        queue: q.export_state(),
    }
}

/// Every single-byte truncation of a real snapshot is rejected with a
/// typed error — the wire format has no prefix that decodes as a valid
/// shorter snapshot.
#[test]
fn every_truncation_point_is_rejected() {
    let bytes = sample_pipeline_state().encode(0xAB, 2);
    for cut in 0..bytes.len() {
        match PipelineState::decode(&bytes[..cut], 0xAB) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {cut}/{} bytes decoded successfully", bytes.len()),
        }
    }
    // The untruncated blob still decodes (the loop above didn't pass
    // vacuously) and carries the right sequence number.
    let (seq, _) = PipelineState::decode(&bytes, 0xAB).unwrap();
    assert_eq!(seq, 2);
}

/// Restoring a snapshot from a *different* configuration is a typed
/// parameter-hash error, not a silent graft of mismatched state.
#[test]
fn cross_config_restore_is_refused() {
    let bytes = sample_pipeline_state().encode(0x1234, 0);
    assert!(matches!(
        PipelineState::decode(&bytes, 0x9999),
        Err(SnapshotError::ParamHashMismatch { stored: 0x1234, expected: 0x9999 })
    ));
    // A stream state from one geometry must not graft onto another.
    let mut src = FgnStream::new(0.8, 1.0, 64, 7);
    let mut buf = vec![0.0f64; 100];
    src.next_block(&mut buf);
    let st = src.export_state();
    let mut other = FgnStream::new(0.8, 1.0, 32, 7);
    assert!(other.restore_state(&st).is_err(), "geometry mismatch must be refused");
}

/// End-to-end store drill: write generations, kill (drop everything),
/// corrupt the newest file, recover via the ladder, resume, and land on
/// the uninterrupted run's final state bit for bit.
#[test]
fn store_ladder_resumes_bit_identically_after_corruption() {
    let dir = std::env::temp_dir().join("vbr_ckpt_ladder_it");
    std::fs::remove_dir_all(&dir).ok();
    let store = CheckpointStore::new(&dir).unwrap();
    let hash = 0xFEED;
    let total = 400usize;

    // Uninterrupted reference.
    let mut src = FgnStream::new(0.8, 1.0, 64, 3);
    let mut want = vec![0.0f64; total];
    src.next_block(&mut want);
    let mut ref_digest = TraceDigest::new();
    ref_digest.update(&want);

    // Checkpointed run, killed after 300 samples (two checkpoints in).
    let mut src = FgnStream::new(0.8, 1.0, 64, 3);
    let mut digest = TraceDigest::new();
    let mut emitted = 0usize;
    let mut buf = vec![0.0f64; 150];
    for seq in 0..2u64 {
        src.next_block(&mut buf);
        digest.update(&buf);
        emitted += buf.len();
        let state = PipelineState {
            slices_done: emitted as u64,
            total_bytes: 0.0,
            digest: digest.value(),
            checkpoint_writes: seq + 1,
            stream: src.export_state(),
            queue: FluidQueue::new(1.0, 1.0).export_state(),
        };
        store.write(&state, hash, seq).unwrap();
    }
    drop(src); // the kill

    // Crash damage on the newest generation (seq 1 → odd slot).
    FaultInjector::new(1)
        .corrupt_file(&store.generation_path(1), FileCorruption::TornTail)
        .unwrap();

    // Recover: ladder must fall back to seq 0 (150 samples done).
    let state = match store.recover(hash) {
        Recovery::Previous { seq, state, .. } => {
            assert_eq!(seq, 0);
            assert_eq!(state.slices_done, 150);
            state
        }
        other => panic!("expected Previous, got {other:?}"),
    };
    let mut resumed = FgnStream::new(0.8, 1.0, 64, 3);
    resumed.restore_state(&state.stream).unwrap();
    let mut digest = TraceDigest::from_value(state.digest);
    let mut tail = vec![0.0f64; total - state.slices_done as usize];
    resumed.next_block(&mut tail);
    digest.update(&tail);
    assert_eq!(digest.value(), ref_digest.value(), "resumed digest must match uninterrupted");
    let want_bits: Vec<u64> = want[150..].iter().map(|x| x.to_bits()).collect();
    let got_bits: Vec<u64> = tail.iter().map(|x| x.to_bits()).collect();
    assert_eq!(want_bits, got_bits);
    std::fs::remove_dir_all(&dir).ok();
}
