//! Fault-injection suite: drives corrupted data through the whole
//! fallible pipeline (estimation → generation → queueing) and asserts
//! three properties per corruption mode:
//!
//! 1. the pipeline returns a *typed* error identifying the defect,
//! 2. no fallible entry point ever panics, and
//! 3. whatever traffic the pipeline does emit is entirely finite.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use vbr_bench::{Corruption, FaultInjector};
use vbr_fgn::RobustFgn;
use vbr_lrd::robust_hurst;
use vbr_model::{try_estimate_series, EstimateOptions, ModelError, ModelParams, SourceModel};
use vbr_qsim::{FluidQueue, MuxSim};
use vbr_stats::error::DataError;
use vbr_video::Trace;

/// A healthy positive frame-size-like series long enough for estimation.
fn healthy_series(n: usize, seed: u64) -> Vec<f64> {
    SourceModel::full(ModelParams::paper_frame_defaults()).generate_frames(n, seed)
}

#[test]
fn estimation_reports_typed_error_per_corruption() {
    let xs = healthy_series(4_000, 1);
    let inj = FaultInjector::new(42);
    let opts = EstimateOptions::default();

    match try_estimate_series(&inj.apply(&xs, Corruption::NanSpike), &opts) {
        Err(ModelError::Data(DataError::NonFiniteSample { value, .. })) => {
            assert!(value.is_nan())
        }
        other => panic!("NanSpike: expected NonFiniteSample, got {other:?}"),
    }
    match try_estimate_series(&inj.apply(&xs, Corruption::InfSpike), &opts) {
        Err(ModelError::Data(DataError::NonFiniteSample { value, .. })) => {
            assert!(value.is_infinite())
        }
        other => panic!("InfSpike: expected NonFiniteSample, got {other:?}"),
    }
    assert!(matches!(
        try_estimate_series(&inj.apply(&xs, Corruption::ZeroVarianceRun), &opts),
        Err(ModelError::Data(DataError::ZeroVariance))
    ));
    assert!(matches!(
        try_estimate_series(&inj.apply(&xs, Corruption::Truncate), &opts),
        Err(ModelError::Data(DataError::TooShort { .. }))
    ));
    // A negated run still yields a valid real-valued series: estimation
    // must survive it (the queue is where negativity is rejected).
    assert!(try_estimate_series(&inj.apply(&xs, Corruption::NegateRun), &opts).is_ok());
}

#[test]
fn ensemble_estimator_reports_typed_error_per_corruption() {
    let xs = healthy_series(2_000, 2);
    let inj = FaultInjector::new(7);
    for mode in [
        Corruption::NanSpike,
        Corruption::InfSpike,
        Corruption::ZeroVarianceRun,
        Corruption::Truncate,
    ] {
        let corrupted = inj.apply(&xs, mode);
        let err = robust_hurst(&corrupted).expect_err("corrupt input must not estimate");
        // The error chains back to a DataError naming the defect.
        let msg = err.to_string();
        assert!(!msg.is_empty(), "{mode:?}: error must describe itself");
    }
    let h = robust_hurst(&inj.apply(&xs, Corruption::NegateRun)).unwrap();
    assert!(h.hurst.is_finite());
}

#[test]
fn queue_rejects_corrupt_arrivals_without_state_damage() {
    let xs = healthy_series(2_000, 3);
    let inj = FaultInjector::new(9);
    for mode in [Corruption::NanSpike, Corruption::InfSpike, Corruption::NegateRun] {
        let corrupted = inj.apply(&xs, mode);
        let mut q = FluidQueue::try_new(10_000.0, 1_000_000.0).unwrap();
        let mut rejected = 0usize;
        for &a in &corrupted {
            if q.try_step(a, 1.0 / 24.0).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "{mode:?}: queue accepted corrupt arrivals");
        // Accounting stays finite and consistent despite the rejections.
        assert!(q.arrived().is_finite() && q.backlog().is_finite());
        assert!(q.backlog() <= 10_000.0 + 1e-9);
    }
}

#[test]
fn no_fallible_entry_point_panics_on_corrupt_input() {
    let xs = healthy_series(3_000, 4);
    let inj = FaultInjector::new(11);
    for mode in Corruption::ALL {
        let corrupted = inj.apply(&xs, mode);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _ = try_estimate_series(&corrupted, &EstimateOptions::default());
            let _ = robust_hurst(&corrupted);
            let mut q = FluidQueue::try_new(1_000.0, 500_000.0).unwrap();
            for &a in corrupted.iter().take(256) {
                let _ = q.try_step(a, 1.0 / 24.0);
            }
        }));
        assert!(result.is_ok(), "{mode:?}: fallible pipeline panicked");
    }
}

#[test]
fn recovered_estimates_generate_only_finite_traffic() {
    // NegateRun is survivable: the estimate that comes back must drive
    // generation and queueing end-to-end without a single non-finite byte.
    let xs = healthy_series(4_000, 5);
    let corrupted = FaultInjector::new(13).apply(&xs, Corruption::NegateRun);
    let est = try_estimate_series(&corrupted, &EstimateOptions::default())
        .expect("negated run should still estimate");
    let model = SourceModel::full(est.params);
    let frames = model.try_generate_frames(4_096, 6).unwrap();
    assert!(frames.iter().all(|v| v.is_finite()));

    let trace = model.try_generate_trace(1_000, 24.0, 30, 6).unwrap();
    let sim = MuxSim::try_new(&trace, 2, 7).unwrap();
    let loss = sim.try_run(sim.mean_rate() * 1.5, 10_000.0).unwrap();
    assert!(loss.p_l.is_finite() && loss.p_wes.is_finite());
}

#[test]
fn fgn_fallback_output_is_finite() {
    // Non-PSD custom covariance: the robust generator must fall back and
    // still emit purely finite samples.
    let mut gamma = vec![0.0; 257];
    gamma[0] = 1.0;
    gamma[1] = 0.8;
    let g = RobustFgn::try_new(0.8, 1.0).unwrap();
    let r = g.generate_from_acvf(&gamma, 200, 17);
    assert!(r.fallback_reason.is_some());
    assert!(r.series.iter().all(|v| v.is_finite()));
}

#[test]
fn corrupt_trace_files_error_instead_of_panicking() {
    // Bit-flip sweeps over a serialised trace: every corruption must come
    // back as io::Error, never a panic or a bogus trace geometry.
    let t = Trace::from_slices(vec![10, 20, 30, 40, 50, 60], 2, 24.0);
    let mut buf = Vec::new();
    t.write_binary(&mut buf).unwrap();
    for i in 0..buf.len() {
        let mut bad = buf.clone();
        bad[i] ^= 0xFF;
        let outcome = catch_unwind(AssertUnwindSafe(|| Trace::read_binary(&bad[..])));
        let parsed = outcome.expect("read_binary must not panic on corrupt bytes");
        if let Ok(trace) = parsed {
            assert!(trace.slices_per_frame() > 0);
            assert!(trace.fps() > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary corruption of arbitrary healthy series: the fallible
    /// pipeline never panics, and a success implies finite estimates.
    #[test]
    fn pipeline_never_panics_under_random_faults(
        seed in 0u64..500,
        inj_seed in 0u64..500,
        n in 1_024usize..3_000,
        mode_idx in 0usize..5,
    ) {
        let xs = healthy_series(n, seed);
        let corrupted = FaultInjector::new(inj_seed).apply(&xs, Corruption::ALL[mode_idx]);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            try_estimate_series(&corrupted, &EstimateOptions::default())
        }));
        prop_assert!(outcome.is_ok(), "panicked on {:?}", Corruption::ALL[mode_idx]);
        if let Ok(Ok(est)) = outcome {
            prop_assert!(est.params.hurst.is_finite());
            prop_assert!(est.params.mu_gamma.is_finite());
        }
    }

    /// Whatever the parameters, generated traffic is finite — the model
    /// never launders a numerical fault into the queue.
    #[test]
    fn generated_traffic_is_always_finite(
        mu in 1e2f64..1e6,
        cv in 0.05f64..0.6,
        slope in 1.5f64..15.0,
        h in 0.55f64..0.95,
        seed in 0u64..1000,
    ) {
        let p = ModelParams::try_new(mu, mu * cv, slope, h).unwrap();
        let frames = SourceModel::full(p).try_generate_frames(512, seed).unwrap();
        prop_assert!(frames.iter().all(|v| v.is_finite()));
    }
}
