//! Bounded-memory block streaming of LRD Gaussian sample paths.
//!
//! Batch Davies–Harte holds the whole circulant (`2n` complex values) in
//! memory, so a 16M-slice trace costs ~0.5 GB of transform workspace
//! before the trace itself exists. The streams here instead synthesise
//! the path in overlapped circulant *windows* of a caller-chosen block
//! size `B`: memory is `O(B)` regardless of how many samples are drawn,
//! and the iterator never terminates — callers take as much as they
//! need.
//!
//! ## Exactness contract
//!
//! Two geometries are offered (see DESIGN.md §10):
//!
//! - **Prefix-exact** ([`FgnStream::new`]): the first window uses the
//!   *same* circulant size, cached spectrum and RNG draw order as the
//!   batch generator called with `n = B`, so the first `B` samples are
//!   **bit-identical** to `DaviesHarte::generate(B, seed)` (resp. the
//!   circulant fARIMA batch path, [`farima_via_circulant`]). Later
//!   windows continue the same RNG stream; each window is internally an
//!   exact sample of the target process, and consecutive windows are
//!   joined over the free overlap `L = (m/2 + 1 − B).min(B)` by a
//!   power-preserving cross-fade (below).
//! - **Quality overlap** ([`FgnStream::with_overlap`]): the caller picks
//!   the overlap `L ≤ B` and the circulant grows to cover `B + L`
//!   samples per window. Longer overlaps track the target
//!   autocovariance further across window seams, at the cost of the
//!   bit-exact prefix (the circulant size — hence the spectrum and the
//!   number of RNG draws per window — differs from the batch call).
//!
//! The cross-fade blends the previous window's unused exact tail
//! `p_0..p_{L−1}` into the new window's head `c_0..c_{L−1}`:
//!
//! ```text
//! z_i = sqrt(1 − a_i)·p_i + sqrt(a_i)·c_i,   a_i = (i + 1)/(L + 1)
//! ```
//!
//! Both inputs are zero-mean Gaussian with the target marginal variance
//! and the weights satisfy `(1 − a_i) + a_i = 1`, so every emitted
//! sample has **exactly** the target `N(0, σ²)` marginal. Covariance is
//! exact within a window and approximate across the seam (the two
//! windows are independent realisations); the overlap length bounds how
//! far the seam error reaches.

use crate::cache::{farima_circulant_spectrum_cached, fgn_circulant_spectrum_cached};
use crate::davies_harte::{
    synthesise_real_into, synthesise_real_lanes_into, synthesise_real_with, LaneSynthScratch,
    SpectrumScales, SynthScratch,
};
use crate::error::FgnError;
use std::sync::Arc;
use vbr_fft::{next_pow2, real_plan_for, RealFftPlan};
use vbr_stats::obs::{self, Counter};
use vbr_stats::rng::Xoshiro256;
use vbr_stats::snapshot::{Payload, Section, SnapshotError};

/// Bulk sample source: anything that can fill a caller buffer with the
/// next run of samples. Implemented by all streams here; consumed by
/// the fused pipeline stages
/// ([`MarginalTransform::map_block_from`](crate::MarginalTransform::map_block_from))
/// so they work over any generator without per-sample dispatch.
pub trait BlockSource {
    /// Fills `out` with the next `out.len()` samples of the source.
    fn next_block(&mut self, out: &mut [f64]);
}

/// Validates a block/overlap pair (`block ≥ 1`, `overlap ≤ block`).
pub(crate) fn check_geometry(block: usize, overlap: usize) -> Result<(), FgnError> {
    if block == 0 {
        return Err(vbr_stats::error::NumericError::OutOfRange {
            what: "stream block size (must be >= 1)",
            value: 0.0,
            lo: 1.0,
            hi: f64::INFINITY,
        }
        .into());
    }
    if overlap > block {
        return Err(vbr_stats::error::NumericError::OutOfRange {
            what: "stream overlap (must be <= block)",
            value: overlap as f64,
            lo: 0.0,
            hi: block as f64,
        }
        .into());
    }
    Ok(())
}

/// Per-source dynamic state of a circulant stream: the RNG, the window
/// being emitted, the seam tail, and the emit position. Everything that
/// differs between two sources driven by the same spectrum lives here —
/// the batch engine ([`crate::batch::BatchStream`]) holds one of these
/// per source over a *shared* spectrum and scratch, which is what makes
/// batched draws bit-identical to independent streams by construction.
#[derive(Debug, Clone)]
pub(crate) struct SourceState {
    pub(crate) rng: Xoshiro256,
    /// The `block` samples currently being emitted.
    pub(crate) cur: Vec<f64>,
    /// Exact tail of the previous window, cross-faded into the next.
    pub(crate) tail: Vec<f64>,
    pub(crate) pos: usize,
    pub(crate) started: bool,
    /// Owner identity carried through export/restore so a source moved
    /// between batch groups (shard migration) keeps its tenant, not just
    /// its positional index. `0` for solo streams.
    pub(crate) tenant: u64,
}

impl SourceState {
    pub(crate) fn new(rng: Xoshiro256, block: usize, overlap: usize) -> Self {
        SourceState {
            rng,
            cur: Vec::with_capacity(block),
            tail: Vec::with_capacity(overlap),
            pos: 0,
            started: false,
            tenant: 0,
        }
    }

    /// Exports the dynamic state for checkpointing.
    pub(crate) fn export(&self) -> StreamState {
        StreamState {
            rng: self.rng.state(),
            cur: self.cur.clone(),
            tail: self.tail.clone(),
            pos: self.pos,
            started: self.started,
            tenant: self.tenant,
        }
    }

    /// Grafts an exported state onto this source after validating every
    /// structural invariant against the owning stream's geometry
    /// (`block`, `overlap`, and whether it is the white-noise path).
    /// Nothing is mutated until everything checks out.
    pub(crate) fn restore(
        &mut self,
        st: &StreamState,
        block: usize,
        overlap: usize,
        white_noise: bool,
    ) -> Result<(), SnapshotError> {
        let rng = Xoshiro256::from_state(st.rng)
            .ok_or(SnapshotError::Invalid { what: "all-zero rng state" })?;
        if !(st.cur.is_empty() || st.cur.len() == block) {
            return Err(SnapshotError::Invalid { what: "window length != stream block" });
        }
        if !(st.tail.is_empty() || st.tail.len() == overlap) {
            return Err(SnapshotError::Invalid { what: "tail length != stream overlap" });
        }
        if st.pos > st.cur.len() {
            return Err(SnapshotError::Invalid { what: "emit position past window end" });
        }
        if white_noise && (st.started || !st.tail.is_empty()) {
            return Err(SnapshotError::Invalid { what: "seam state on a white-noise stream" });
        }
        if !white_noise && !st.started {
            // `started` flips on the first circulant refill; the only
            // pre-start state is the empty one. (White-noise streams
            // never set it and were handled above.)
            if !(st.cur.is_empty() && st.tail.is_empty() && st.pos == 0) {
                return Err(SnapshotError::Invalid { what: "window present before first refill" });
            }
        }
        if st.cur.iter().chain(st.tail.iter()).any(|v| !v.is_finite()) {
            return Err(SnapshotError::Invalid { what: "non-finite sample in stream state" });
        }
        self.rng = rng;
        self.cur.clear();
        self.cur.extend_from_slice(&st.cur);
        self.tail.clear();
        self.tail.extend_from_slice(&st.tail);
        self.pos = st.pos;
        self.started = st.started;
        self.tenant = st.tenant;
        Ok(())
    }
}

/// Window-synthesis workspace shared across refills (and, in the batch
/// engine, across *sources*): the real synthesis scratch plus the `m`
/// real samples of the current circulant window.
#[derive(Debug, Clone, Default)]
pub(crate) struct WindowScratch {
    pub(crate) synth: SynthScratch,
    /// The `m` real samples of the freshly synthesised window.
    pub(crate) win: Vec<f64>,
}

/// Everything a refill needs that is a pure function of the circulant
/// spectrum: the precomputed per-bin amplitudes and the real-FFT plan.
/// Built once at stream construction, shared (`Arc`) across a batch
/// group, so the hot loop never touches the plan cache's mutex or
/// recomputes `√(λ_k/2m)`.
#[derive(Debug, Clone)]
pub(crate) struct SharedSpectrum {
    pub(crate) scales: Arc<SpectrumScales>,
    pub(crate) plan: Arc<RealFftPlan>,
}

impl SharedSpectrum {
    pub(crate) fn new(lambda: &[f64]) -> Self {
        SharedSpectrum {
            scales: Arc::new(SpectrumScales::new(lambda)),
            plan: real_plan_for(lambda.len()),
        }
    }

    /// Circulant transform length `m`.
    pub(crate) fn m(&self) -> usize {
        self.scales.m()
    }
}

/// Window lookahead of a solo stream: `k = lanes()` future circulant
/// windows synthesised in one lane-parallel pass, then consumed one per
/// refill. The RNG state snapshot taken after each window's draws is
/// grafted back on consumption, so export/restore observes exactly the
/// scalar stream's state at every point — lookahead is invisible to the
/// checkpoint format and to every emitted bit (window `w`'s samples
/// depend only on window `w`'s draws, and the lane FFT is bit-identical
/// per lane).
#[derive(Debug, Clone, Default)]
struct Prefetch {
    /// Lane-interleaved window samples at unit scale: sample `t` of
    /// window `w` at `buf[t*k + w]`.
    buf: Vec<f64>,
    /// Windows per lookahead batch (`lanes()` at synthesis time).
    k: usize,
    /// Next unconsumed window; `next >= k` means the lookahead is empty.
    next: usize,
    /// RNG state after each window's `m` draws.
    rng_after: Vec<Xoshiro256>,
    scratch: LaneSynthScratch,
}

impl Prefetch {
    fn clear(&mut self) {
        self.next = self.k;
    }
}

/// Synthesises the next window of one source, cross-fading the seam.
/// This is the engine step shared verbatim by [`CirculantStream`] and
/// the batch engine — one source's refill depends only on its own
/// [`SourceState`], so interleaving sources over a shared scratch
/// cannot change any output bit.
pub(crate) fn refill_source(
    spectrum: Option<&SharedSpectrum>,
    sd: f64,
    block: usize,
    overlap: usize,
    st: &mut SourceState,
    scratch: &mut WindowScratch,
) {
    let _span = obs::span("fgn.stream_refill");
    obs::counter_add(Counter::StreamBlocks, 1);
    st.pos = 0;
    let Some(spectrum) = spectrum else {
        // White-noise path: batch-draw the block through the
        // vectorized quantile kernel, then scale. Per-element values
        // are bit-identical to the old per-sample loop.
        st.cur.clear();
        st.cur.resize(block, 0.0);
        st.rng.fill_standard_normal(&mut st.cur);
        for x in &mut st.cur {
            *x *= sd;
        }
        return;
    };
    synthesise_real_with(
        &spectrum.scales,
        &spectrum.plan,
        &mut st.rng,
        &mut scratch.synth,
        &mut scratch.win,
    );
    let (b, l) = (block, overlap);
    st.cur.clear();
    st.cur.extend(scratch.win[..b].iter().map(|x| x * sd));
    if st.started {
        // Power-preserving cross-fade against the previous tail:
        // weights sum to one in *variance*, so the N(0, σ²) marginal
        // is preserved exactly at every blended sample.
        if l > 0 {
            obs::counter_add(Counter::SeamCrossFades, 1);
        }
        for i in 0..l {
            let a = (i + 1) as f64 / (l + 1) as f64;
            st.cur[i] = (1.0 - a).sqrt() * st.tail[i] + a.sqrt() * st.cur[i];
        }
    }
    st.tail.clear();
    st.tail.extend(scratch.win[b..b + l].iter().map(|x| x * sd));
    st.started = true;
}

/// Fills `out` with the next `out.len()` samples of one source — the
/// chunked emit loop shared by [`CirculantStream::next_block`] and the
/// batch engine.
pub(crate) fn next_block_source(
    spectrum: Option<&SharedSpectrum>,
    sd: f64,
    block: usize,
    overlap: usize,
    st: &mut SourceState,
    scratch: &mut WindowScratch,
    out: &mut [f64],
) {
    let mut filled = 0;
    while filled < out.len() {
        if st.pos >= st.cur.len() {
            refill_source(spectrum, sd, block, overlap, st, scratch);
        }
        let take = (out.len() - filled).min(st.cur.len() - st.pos);
        out[filled..filled + take].copy_from_slice(&st.cur[st.pos..st.pos + take]);
        st.pos += take;
        filled += take;
    }
}

/// The engine shared by [`FgnStream`] and [`FarimaStream`]: an infinite
/// iterator over overlapped circulant windows of a fixed spectrum.
///
/// All buffers (the synthesis scratch, `cur`, `tail`) are allocated once
/// at construction and reused every window, so steady-state generation
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct CirculantStream {
    sd: f64,
    block: usize,
    overlap: usize,
    /// `None` is the degenerate `block == 1` white-noise path (matching
    /// the batch generators' `n == 1` special case, where the circulant
    /// machinery is bypassed entirely).
    spectrum: Option<SharedSpectrum>,
    state: SourceState,
    scratch: WindowScratch,
    /// Lane-parallel window lookahead (spectrum streams only). Costs
    /// `O(lanes() · m)` extra floats per stream — the one place the
    /// engine trades memory for lane parallelism on a solo source.
    prefetch: Prefetch,
}

impl CirculantStream {
    /// Builds a stream over an explicit circulant spectrum (`None` for
    /// the white-noise path). Geometry must already be validated; the
    /// spectrum window must cover `block + overlap` samples
    /// (`lambda.len()/2 + 1 ≥ block + overlap`).
    fn from_spectrum(
        spectrum: Option<Arc<Vec<f64>>>,
        sd: f64,
        block: usize,
        overlap: usize,
        rng: Xoshiro256,
    ) -> Self {
        if let Some(lambda) = &spectrum {
            debug_assert!(lambda.len() / 2 + 1 >= block + overlap);
        }
        CirculantStream {
            sd,
            block,
            overlap,
            spectrum: spectrum.map(|l| SharedSpectrum::new(&l)),
            state: SourceState::new(rng, block, overlap),
            scratch: WindowScratch::default(),
            prefetch: Prefetch::default(),
        }
    }

    /// Emitted samples per window.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Samples cross-faded at each window seam.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// Circulant transform length per window (`0` on the white-noise
    /// path) — the memory scale of the stream.
    pub fn circulant_len(&self) -> usize {
        self.spectrum.as_ref().map_or(0, |sp| sp.m())
    }

    /// Synthesises the next window, consuming the lane-parallel
    /// lookahead (and refilling it `lanes()` windows at a time) on the
    /// spectrum path. Emitted bits and the externally visible state
    /// (RNG position, window, tail) are identical to the scalar
    /// [`refill_source`] at every refill — see [`Prefetch`].
    fn refill(&mut self) {
        let Some(sp) = &self.spectrum else {
            refill_source(
                None,
                self.sd,
                self.block,
                self.overlap,
                &mut self.state,
                &mut self.scratch,
            );
            return;
        };
        let _span = obs::span("fgn.stream_refill");
        obs::counter_add(Counter::StreamBlocks, 1);
        let st = &mut self.state;
        let pf = &mut self.prefetch;
        st.pos = 0;
        let m = sp.m();
        if pf.next >= pf.k {
            // Synthesise the next `lanes()` windows in one pass. Draws
            // are sequential per window in the contract order, so the
            // RNG stream is exactly the scalar stream's whatever `k` is.
            pf.k = vbr_fft::lanes();
            pf.rng_after.clear();
            let gauss = pf.scratch.gauss_rows(m, pf.k);
            for w in 0..pf.k {
                // Uniforms only here; the RNG snapshot is taken at the
                // same stream position either way since the quantile
                // transform consumes no draws. One elementwise quantile
                // pass below then covers all k windows — bit-identical
                // to per-window `fill_standard_normal`, with the
                // kernel's setup cost amortised over the prefetch.
                st.rng.fill_open01(&mut gauss[w * m..(w + 1) * m]);
                pf.rng_after.push(st.rng.clone());
            }
            vbr_stats::special::norm_quantile_slice(gauss);
            synthesise_real_lanes_into(&sp.scales, &sp.plan, pf.k, &mut pf.scratch, &mut pf.buf);
            pf.next = 0;
        }
        let (w, k) = (pf.next, pf.k);
        let (b, l) = (self.block, self.overlap);
        let sd = self.sd;
        // Sample `t` of window `w` lives at `buf[t*k + w]`; the strided
        // reads below apply the very expressions of the scalar refill.
        let win = &pf.buf;
        st.cur.clear();
        st.cur.extend((0..b).map(|t| win[t * k + w] * sd));
        if st.started {
            if l > 0 {
                obs::counter_add(Counter::SeamCrossFades, 1);
            }
            for i in 0..l {
                let a = (i + 1) as f64 / (l + 1) as f64;
                st.cur[i] = (1.0 - a).sqrt() * st.tail[i] + a.sqrt() * st.cur[i];
            }
        }
        st.tail.clear();
        st.tail.extend((b..b + l).map(|t| win[t * k + w] * sd));
        st.started = true;
        // Graft back the post-window RNG snapshot: the stream's state is
        // now indistinguishable from having synthesised windows one at a
        // time (export/restore relies on this).
        st.rng = pf.rng_after[w].clone();
        pf.next += 1;
    }

    /// Fills `out` with the next `out.len()` samples of the stream —
    /// the chunked equivalent of calling [`Iterator::next`] in a loop,
    /// without per-sample dispatch.
    pub fn next_block(&mut self, out: &mut [f64]) {
        let mut filled = 0;
        while filled < out.len() {
            if self.state.pos >= self.state.cur.len() {
                self.refill();
            }
            let st = &mut self.state;
            let take = (out.len() - filled).min(st.cur.len() - st.pos);
            out[filled..filled + take].copy_from_slice(&st.cur[st.pos..st.pos + take]);
            st.pos += take;
            filled += take;
        }
    }
}

impl Iterator for CirculantStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.state.pos >= self.state.cur.len() {
            self.refill();
        }
        let v = self.state.cur[self.state.pos];
        self.state.pos += 1;
        Some(v)
    }
}

/// The dynamic (per-run) state of a circulant stream, exportable for
/// checkpoint/restore.
///
/// Configuration — Hurst, variance, block, overlap, and hence the
/// circulant spectrum — is deliberately *not* part of the state: a
/// restore target is rebuilt from its own configuration (whose
/// parameter hash the snapshot envelope guards) and then has this
/// dynamic state grafted on via [`CirculantStream::restore_state`].
/// That keeps snapshots `O(block)` and makes a config/state mismatch a
/// typed error instead of silent garbage.
///
/// The restore contract is **bit-identity**: a stream rebuilt from an
/// exported state emits exactly the same remaining samples, whatever
/// point of a window the export happened at (the current window and
/// seam tail travel in full).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// RNG state ([`Xoshiro256::state`]).
    pub rng: [u64; 4],
    /// The window being emitted (empty before the first refill).
    pub cur: Vec<f64>,
    /// Exact tail of the previous window awaiting the next cross-fade.
    pub tail: Vec<f64>,
    /// Emit position within `cur`.
    pub pos: usize,
    /// Whether a window has been synthesised (seam blending is active).
    pub started: bool,
    /// Tenant identity of the source. Solo streams export `0`; batch
    /// sources export whatever identity they were admitted with, so a
    /// state restored into a different batch group (shard migration)
    /// carries its owner along instead of relying on positional index.
    /// Any value is structurally valid — identity is data, not geometry.
    pub tenant: u64,
}

impl StreamState {
    /// Serialises the state into a snapshot section payload.
    pub fn encode(&self, p: &mut Payload) {
        p.put_u64_slice(&self.rng);
        p.put_f64_slice(&self.cur);
        p.put_f64_slice(&self.tail);
        p.put_usize(self.pos);
        p.put_bool(self.started);
        p.put_u64(self.tenant);
    }

    /// Deserialises a state from a snapshot section. Structural bounds
    /// are enforced here; semantic validation against a concrete stream
    /// happens in [`CirculantStream::restore_state`].
    pub fn decode(s: &mut Section) -> Result<Self, SnapshotError> {
        let rng_vec = s.get_u64_vec()?;
        let rng: [u64; 4] = rng_vec
            .try_into()
            .map_err(|_| SnapshotError::Invalid { what: "rng state is not 4 words" })?;
        let cur = s.get_f64_vec()?;
        let tail = s.get_f64_vec()?;
        let pos = s.get_usize()?;
        let started = s.get_bool()?;
        let tenant = s.get_u64()?;
        Ok(StreamState { rng, cur, tail, pos, started, tenant })
    }
}

impl CirculantStream {
    /// Exports the dynamic state (RNG, current window, seam tail,
    /// position) for checkpointing. `O(block + overlap)` copied floats.
    pub fn export_state(&self) -> StreamState {
        self.state.export()
    }

    /// Grafts an exported state onto this (same-configuration) stream.
    ///
    /// Every structural invariant is validated before anything is
    /// mutated, so a hostile state leaves the stream untouched:
    /// buffer lengths must match this stream's geometry, the position
    /// must lie within the window, all samples must be finite, and the
    /// RNG state must not be the degenerate all-zero word.
    pub fn restore_state(&mut self, st: &StreamState) -> Result<(), SnapshotError> {
        self.state.restore(st, self.block, self.overlap, self.spectrum.is_none())?;
        // The lookahead was synthesised from the pre-restore RNG stream;
        // drop it so the next refill draws from the restored state.
        self.prefetch.clear();
        Ok(())
    }
}

impl FgnStream {
    /// Exports the dynamic state for checkpointing; see
    /// [`CirculantStream::export_state`].
    pub fn export_state(&self) -> StreamState {
        self.0.export_state()
    }

    /// Restores an exported state; see
    /// [`CirculantStream::restore_state`].
    pub fn restore_state(&mut self, st: &StreamState) -> Result<(), SnapshotError> {
        self.0.restore_state(st)
    }
}

impl FarimaStream {
    /// Exports the dynamic state for checkpointing; see
    /// [`CirculantStream::export_state`].
    pub fn export_state(&self) -> StreamState {
        self.0.export_state()
    }

    /// Restores an exported state; see
    /// [`CirculantStream::restore_state`].
    pub fn restore_state(&mut self, st: &StreamState) -> Result<(), SnapshotError> {
        self.0.restore_state(st)
    }
}

impl BlockSource for CirculantStream {
    fn next_block(&mut self, out: &mut [f64]) {
        CirculantStream::next_block(self, out);
    }
}

impl BlockSource for FgnStream {
    fn next_block(&mut self, out: &mut [f64]) {
        self.0.next_block(out);
    }
}

impl BlockSource for FarimaStream {
    fn next_block(&mut self, out: &mut [f64]) {
        self.0.next_block(out);
    }
}

/// Prefix-exact geometry: the circulant of the batch call with `n =
/// block`, plus whatever exact overlap it yields for free. Returns
/// `(m, overlap)`; `block` must be `≥ 2`.
pub(crate) fn prefix_exact_geometry(block: usize) -> (usize, usize) {
    let m = next_pow2(2 * (block - 1)).max(2);
    let exact_run = m / 2 + 1;
    (m, (exact_run - block).min(block))
}

/// Infinite bounded-memory stream of exact-in-window fractional
/// Gaussian noise.
///
/// ```
/// use vbr_fgn::{DaviesHarte, FgnStream};
/// let block = 1000;
/// let streamed: Vec<f64> = FgnStream::new(0.8, 1.0, block, 42).take(block).collect();
/// // Prefix-exact: bit-identical to the batch generator on the first block.
/// assert_eq!(streamed, DaviesHarte::new(0.8, 1.0).generate(block, 42));
/// ```
#[derive(Debug, Clone)]
pub struct FgnStream(CirculantStream);

impl FgnStream {
    /// Prefix-exact stream: the first `block` samples are bit-identical
    /// to `DaviesHarte::new(hurst, variance).generate(block, seed)`.
    /// Panics on invalid parameters; see [`try_new`](Self::try_new).
    pub fn new(hurst: f64, variance: f64, block: usize, seed: u64) -> Self {
        Self::try_new(hurst, variance, block, seed)
            .unwrap_or_else(|e| panic!("FgnStream construction failed: {e}"))
    }

    /// Fallible [`new`](Self::new).
    pub fn try_new(
        hurst: f64,
        variance: f64,
        block: usize,
        seed: u64,
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, None, seed)
    }

    /// Stream with a caller-chosen seam overlap `overlap ≤ block` (the
    /// circulant grows to cover `block + overlap` samples per window).
    /// Better cross-window covariance than [`new`](Self::new), but the
    /// prefix is no longer bit-identical to the batch generator.
    pub fn with_overlap(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: usize,
        seed: u64,
    ) -> Self {
        Self::try_with_overlap(hurst, variance, block, overlap, seed)
            .unwrap_or_else(|e| panic!("FgnStream construction failed: {e}"))
    }

    /// Fallible [`with_overlap`](Self::with_overlap).
    pub fn try_with_overlap(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: usize,
        seed: u64,
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, Some(overlap), seed)
    }

    fn build(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: Option<usize>,
        seed: u64,
    ) -> Result<Self, FgnError> {
        if !(hurst > 0.0 && hurst < 1.0) {
            return Err(FgnError::InvalidHurst { hurst, lo: 0.0, hi: 1.0 });
        }
        if !(variance > 0.0 && variance.is_finite()) {
            return Err(FgnError::InvalidVariance { variance });
        }
        check_geometry(block, overlap.unwrap_or(0))?;
        let sd = variance.sqrt();
        let rng = Xoshiro256::seed_from_u64(seed);
        if block == 1 {
            return Ok(FgnStream(CirculantStream::from_spectrum(None, sd, 1, 0, rng)));
        }
        let (m, l) = match overlap {
            None => prefix_exact_geometry(block),
            Some(l) => (next_pow2(2 * (block + l - 1)).max(2), l),
        };
        let lambda = fgn_circulant_spectrum_cached(hurst, m)?;
        Ok(FgnStream(CirculantStream::from_spectrum(Some(lambda), sd, block, l, rng)))
    }

    /// Fills `out` with the next `out.len()` samples (chunked draw).
    pub fn next_block(&mut self, out: &mut [f64]) {
        self.0.next_block(out);
    }

    /// Emitted samples per circulant window.
    pub fn block(&self) -> usize {
        self.0.block()
    }

    /// Samples cross-faded at each window seam.
    pub fn overlap(&self) -> usize {
        self.0.overlap()
    }

    /// Circulant transform length per window — the memory scale.
    pub fn circulant_len(&self) -> usize {
        self.0.circulant_len()
    }
}

impl Iterator for FgnStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.0.next()
    }
}

/// Infinite bounded-memory stream of exact-in-window fractional
/// ARIMA(0, d, 0) noise — the streaming, `O(n log n)` counterpart of
/// [`crate::Hosking`], via the same circulant engine as [`FgnStream`].
///
/// Unlike the fGn embedding, the fARIMA circulant is not provably PSD
/// at every `(d, m)`, so construction is fallible
/// ([`FgnError::NonPsdEmbedding`]); in practice the embedding succeeds
/// for `H ∈ [0.5, 1)` at all power-of-two sizes we exercise.
#[derive(Debug, Clone)]
pub struct FarimaStream(CirculantStream);

impl FarimaStream {
    /// Prefix-exact stream: the first `block` samples are bit-identical
    /// to [`farima_via_circulant`]`(hurst, variance, block, seed)`.
    /// `H ∈ [0.5, 1)` as for [`crate::Hosking`].
    pub fn try_new(
        hurst: f64,
        variance: f64,
        block: usize,
        seed: u64,
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, None, seed)
    }

    /// Fallible stream with a caller-chosen seam overlap; see
    /// [`FgnStream::with_overlap`] for the trade-off.
    pub fn try_with_overlap(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: usize,
        seed: u64,
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, Some(overlap), seed)
    }

    fn build(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: Option<usize>,
        seed: u64,
    ) -> Result<Self, FgnError> {
        if !(0.5..1.0).contains(&hurst) {
            return Err(FgnError::InvalidHurst { hurst, lo: 0.5, hi: 1.0 });
        }
        if !(variance > 0.0 && variance.is_finite()) {
            return Err(FgnError::InvalidVariance { variance });
        }
        check_geometry(block, overlap.unwrap_or(0))?;
        let d = crate::acvf::hurst_to_d(hurst);
        let sd = variance.sqrt();
        let rng = Xoshiro256::seed_from_u64(seed);
        if block == 1 {
            return Ok(FarimaStream(CirculantStream::from_spectrum(None, sd, 1, 0, rng)));
        }
        let (m, l) = match overlap {
            None => prefix_exact_geometry(block),
            Some(l) => (next_pow2(2 * (block + l - 1)).max(2), l),
        };
        let lambda = farima_circulant_spectrum_cached(d, m)?;
        Ok(FarimaStream(CirculantStream::from_spectrum(Some(lambda), sd, block, l, rng)))
    }

    /// Fills `out` with the next `out.len()` samples (chunked draw).
    pub fn next_block(&mut self, out: &mut [f64]) {
        self.0.next_block(out);
    }

    /// Emitted samples per circulant window.
    pub fn block(&self) -> usize {
        self.0.block()
    }

    /// Samples cross-faded at each window seam.
    pub fn overlap(&self) -> usize {
        self.0.overlap()
    }

    /// Circulant transform length per window — the memory scale.
    pub fn circulant_len(&self) -> usize {
        self.0.circulant_len()
    }
}

impl Iterator for FarimaStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.0.next()
    }
}

/// Batch fARIMA(0, d, 0) in `O(n log n)` via circulant embedding — the
/// fast alternative to [`crate::Hosking`]'s exact `O(n²)` recursion,
/// and the batch comparator for [`FarimaStream`]'s prefix-exactness
/// contract. `H ∈ [0.5, 1)`; variance is the marginal variance (the
/// theoretical fARIMA autocorrelation is used, scaled by `variance`),
/// matching the [`crate::Hosking`] parameterisation.
pub fn farima_via_circulant(
    hurst: f64,
    variance: f64,
    n: usize,
    seed: u64,
) -> Result<Vec<f64>, FgnError> {
    if !(0.5..1.0).contains(&hurst) {
        return Err(FgnError::InvalidHurst { hurst, lo: 0.5, hi: 1.0 });
    }
    if !(variance > 0.0 && variance.is_finite()) {
        return Err(FgnError::InvalidVariance { variance });
    }
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let sd = variance.sqrt();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![rng.standard_normal() * sd]);
    }
    let m = next_pow2(2 * (n - 1)).max(2);
    let lambda = farima_circulant_spectrum_cached(crate::acvf::hurst_to_d(hurst), m)?;
    let mut scratch = SynthScratch::new();
    let mut out = Vec::new();
    synthesise_real_into(&lambda, &mut rng, &mut scratch, &mut out);
    out.truncate(n);
    for x in &mut out {
        *x *= sd;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acvf::fgn_acvf;
    use crate::davies_harte::DaviesHarte;

    fn sample_stats(x: &[f64]) -> (f64, f64) {
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
        (mean, var)
    }

    #[test]
    fn prefix_bit_identical_to_batch() {
        let g = DaviesHarte::new(0.8, 2.5);
        for block in [2usize, 7, 64, 500, 1025] {
            let batch = g.generate(block, 42);
            let streamed: Vec<f64> =
                FgnStream::new(0.8, 2.5, block, 42).take(block).collect();
            assert_eq!(streamed, batch, "block {block}");
        }
    }

    #[test]
    fn block_one_matches_batch_white_path() {
        let g = DaviesHarte::new(0.7, 4.0);
        let batch = g.generate(1, 9);
        let streamed: Vec<f64> = FgnStream::new(0.7, 4.0, 1, 9).take(1).collect();
        assert_eq!(streamed, batch);
        // And it keeps producing iid normals with the right variance.
        let long: Vec<f64> = FgnStream::new(0.7, 4.0, 1, 9).take(50_000).collect();
        let (mean, var) = sample_stats(&long);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn next_block_matches_iterator() {
        let mut by_chunks = FgnStream::new(0.8, 1.0, 512, 7);
        let by_iter: Vec<f64> = FgnStream::new(0.8, 1.0, 512, 7).take(2000).collect();
        let mut got = vec![0.0; 2000];
        // Odd chunk sizes to exercise window-boundary straddling.
        let (a, rest) = got.split_at_mut(123);
        let (b, c) = rest.split_at_mut(1000);
        by_chunks.next_block(a);
        by_chunks.next_block(b);
        by_chunks.next_block(c);
        assert_eq!(got, by_iter);
    }

    #[test]
    fn long_stream_preserves_marginal_variance() {
        // Cross-faded seams must not change the N(0, σ²) marginal.
        let n = 1 << 17;
        let x: Vec<f64> = FgnStream::with_overlap(0.8, 1.0, 4096, 2048, 3).take(n).collect();
        let (mean, var) = sample_stats(&x);
        assert!(mean.abs() < 0.12, "mean {mean}");
        assert!((var - 1.0).abs() < 0.12, "var {var}");
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn long_stream_tracks_short_lag_acf() {
        let h = 0.8;
        let n = 1 << 17;
        let x: Vec<f64> = FgnStream::with_overlap(h, 1.0, 4096, 2048, 11).take(n).collect();
        let r = vbr_stats::acf::autocorrelation(&x, 5);
        let want = fgn_acvf(h, 5);
        for k in 1..=5 {
            assert!(
                (r[k] - want[k]).abs() < 0.06,
                "lag {k}: sample {} vs theory {}",
                r[k],
                want[k]
            );
        }
    }

    #[test]
    fn farima_stream_prefix_matches_circulant_batch() {
        for block in [2usize, 33, 700] {
            let batch = farima_via_circulant(0.8, 1.0, block, 5).unwrap();
            let streamed: Vec<f64> = FarimaStream::try_new(0.8, 1.0, block, 5)
                .unwrap()
                .take(block)
                .collect();
            assert_eq!(streamed, batch, "block {block}");
        }
    }

    #[test]
    fn farima_circulant_matches_hosking_acf() {
        // Same model, different algorithms: the sample lag-1 correlation
        // of the circulant path must sit near Hosking's theoretical
        // rho_1 = d/(1-d).
        let h = 0.875; // d = 0.375, rho_1 = 0.6
        let x = farima_via_circulant(h, 1.0, 1 << 16, 17).unwrap();
        let r = vbr_stats::acf::autocorrelation(&x, 1);
        let d = crate::acvf::hurst_to_d(h);
        let want = d / (1.0 - d);
        assert!((r[1] - want).abs() < 0.05, "rho_1 {} vs {}", r[1], want);
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert!(matches!(
            FgnStream::try_new(1.2, 1.0, 64, 0),
            Err(FgnError::InvalidHurst { .. })
        ));
        assert!(matches!(
            FgnStream::try_new(0.8, -1.0, 64, 0),
            Err(FgnError::InvalidVariance { .. })
        ));
        assert!(FgnStream::try_new(0.8, 1.0, 0, 0).is_err());
        assert!(FgnStream::try_with_overlap(0.8, 1.0, 64, 65, 0).is_err());
        assert!(matches!(
            FarimaStream::try_new(0.3, 1.0, 64, 0),
            Err(FgnError::InvalidHurst { .. })
        ));
    }

    #[test]
    fn export_restore_resumes_bit_identically() {
        // Kill at an arbitrary (non-boundary) point, restore into a
        // freshly built same-config stream, and the remainder must be
        // bit-identical to the uninterrupted run.
        for (block, overlap, taken) in
            [(64usize, None, 100usize), (500, Some(123), 777), (1, None, 5), (64, Some(0), 64)]
        {
            let build = |ovl: Option<usize>| match ovl {
                None => FgnStream::new(0.8, 1.5, block, 21),
                Some(l) => FgnStream::with_overlap(0.8, 1.5, block, l, 21),
            };
            let mut uninterrupted = build(overlap);
            let full: Vec<f64> = uninterrupted.by_ref().take(taken + 500).collect();

            let mut first = build(overlap);
            let _prefix: Vec<f64> = first.by_ref().take(taken).collect();
            let state = first.export_state();
            drop(first); // the "crash"

            let mut resumed = build(overlap);
            resumed.restore_state(&state).unwrap();
            let rest: Vec<f64> = resumed.take(500).collect();
            let want: Vec<u64> = full[taken..].iter().map(|v| v.to_bits()).collect();
            let got: Vec<u64> = rest.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "block={block} overlap={overlap:?} taken={taken}");
        }
    }

    #[test]
    fn farima_export_restore_resumes_bit_identically() {
        let mut uninterrupted = FarimaStream::try_new(0.8, 1.0, 200, 4).unwrap();
        let full: Vec<f64> = uninterrupted.by_ref().take(900).collect();
        let mut first = FarimaStream::try_new(0.8, 1.0, 200, 4).unwrap();
        let _prefix: Vec<f64> = first.by_ref().take(333).collect();
        let state = first.export_state();
        let mut resumed = FarimaStream::try_new(0.8, 1.0, 200, 4).unwrap();
        resumed.restore_state(&state).unwrap();
        let got: Vec<u64> = resumed.take(900 - 333).map(|v| v.to_bits()).collect();
        let want: Vec<u64> = full[333..].iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn restore_rejects_mismatched_or_hostile_state() {
        let mut donor = FgnStream::new(0.8, 1.0, 64, 1);
        let _: Vec<f64> = donor.by_ref().take(10).collect();
        let good = donor.export_state();

        // Wrong geometry: state from a block-64 stream into a block-128 one.
        let mut other = FgnStream::new(0.8, 1.0, 128, 1);
        assert!(other.restore_state(&good).is_err());

        // Hostile mutations, each a typed refusal on the right stream.
        let mut target = FgnStream::new(0.8, 1.0, 64, 2);
        let mut bad = good.clone();
        bad.rng = [0; 4];
        assert!(target.restore_state(&bad).is_err());
        let mut bad = good.clone();
        bad.pos = bad.cur.len() + 1;
        assert!(target.restore_state(&bad).is_err());
        let mut bad = good.clone();
        if !bad.cur.is_empty() {
            bad.cur[0] = f64::NAN;
        }
        assert!(target.restore_state(&bad).is_err());
        let mut bad = good.clone();
        bad.tail.push(0.5);
        assert!(target.restore_state(&bad).is_err());
        // A refused restore leaves the target fully functional…
        target.restore_state(&good).unwrap();
        // …and resuming it matches the donor's continuation.
        let a: Vec<u64> = target.take(100).map(|v| v.to_bits()).collect();
        let b: Vec<u64> = donor.take(100).map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_state_codec_round_trip() {
        use vbr_stats::snapshot::{SnapshotReader, SnapshotWriter};
        let mut s = FgnStream::new(0.8, 1.0, 100, 9);
        let _: Vec<f64> = s.by_ref().take(157).collect();
        let state = s.export_state();
        let mut w = SnapshotWriter::new(1, 1);
        w.section(0x5354_524D, |p| state.encode(p));
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut sec = r.section(0x5354_524D, "stream").unwrap();
        let decoded = StreamState::decode(&mut sec).unwrap();
        sec.finish().unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn geometry_accessors() {
        let s = FgnStream::new(0.8, 1.0, 1000, 1);
        assert_eq!(s.block(), 1000);
        assert_eq!(s.circulant_len(), 2048);
        assert_eq!(s.overlap(), 25); // m/2 + 1 - B = 1025 - 1000
        let s = FgnStream::with_overlap(0.8, 1.0, 1000, 500, 1);
        assert_eq!(s.overlap(), 500);
        assert_eq!(s.circulant_len(), 4096); // next_pow2(2 * 1499)
        let s = FgnStream::new(0.8, 1.0, 1, 1);
        assert_eq!(s.circulant_len(), 0);
    }
}
