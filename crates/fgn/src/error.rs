//! Typed errors for the LRD sample-path generators.

use std::fmt;
use vbr_stats::error::{DataError, NumericError};

/// Why a generator could not be built or could not produce a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FgnError {
    /// Hurst parameter outside the generator's domain.
    InvalidHurst {
        /// Offending value.
        hurst: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Marginal variance not strictly positive (or not finite).
    InvalidVariance {
        /// Offending value.
        variance: f64,
    },
    /// The circulant embedding of the requested autocovariance has a
    /// genuinely negative eigenvalue: the spectrum is not positive
    /// semi-definite and Davies–Harte cannot synthesise it exactly.
    NonPsdEmbedding {
        /// The most negative eigenvalue found.
        min_eigenvalue: f64,
        /// Requested series length.
        n: usize,
    },
    /// A parameter failure from the shared validators.
    Numeric(NumericError),
    /// A sample-level failure (e.g. a non-finite value crossing a
    /// pipeline stage seam) from the shared validators.
    Data(DataError),
}

impl fmt::Display for FgnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FgnError::InvalidHurst { hurst, lo, hi } => {
                write!(f, "Hurst parameter must be in [{lo}, {hi}), got {hurst}")
            }
            FgnError::InvalidVariance { variance } => {
                write!(f, "variance must be positive, got {variance}")
            }
            FgnError::NonPsdEmbedding { min_eigenvalue, n } => write!(
                f,
                "circulant embedding for n = {n} is not positive semi-definite \
                 (min eigenvalue {min_eigenvalue:e}); use an exact O(n²) generator"
            ),
            FgnError::Numeric(e) => e.fmt(f),
            FgnError::Data(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FgnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FgnError::Numeric(e) => Some(e),
            FgnError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for FgnError {
    fn from(e: NumericError) -> Self {
        FgnError::Numeric(e)
    }
}

impl From<DataError> for FgnError {
    fn from(e: DataError) -> Self {
        FgnError::Data(e)
    }
}
