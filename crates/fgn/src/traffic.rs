//! The `TrafficModel` trait — the seam every generator family plugs
//! into.
//!
//! The paper's Fig 16 compares *one* model family against the trace; the
//! model-zoo bake-off compares several (fARIMA + Gamma/Pareto, the
//! multifractal wavelet model, the Markov scene chain) under the *same*
//! estimators and queueing experiments — the methodological point raised
//! by Clegg et al.: an LRD conclusion should survive a change of
//! generator. A `TrafficModel` is a [`BlockSource`] (so all streaming
//! machinery — marginal transforms, fluid queues, batch schedulers —
//! consumes it unchanged) that additionally knows its nominal moments and
//! Hurst parameter and can checkpoint itself over the snapshot codec.

use vbr_stats::snapshot::{Payload, Section, SnapshotError, SnapshotReader, SnapshotWriter};
use vbr_stats::ParamHasher;

use crate::stream::BlockSource;

/// Section tag every [`TrafficModel`] snapshot stores its state under.
pub const TRAFFIC_STATE_TAG: u32 = 0x5452_4146; // "TRAF"

/// A checkpointable traffic generator with known nominal statistics.
///
/// Contract (enforced by the conformance suite in `vbr-model`):
///
/// - **Determinism:** two instances built with the same parameters and
///   seed emit identical sample streams, independent of the block sizes
///   the consumer happens to request.
/// - **Snapshot/restore:** [`snapshot`](Self::snapshot) captures the full
///   dynamic state; [`restore`](Self::restore) into a same-parameter
///   instance resumes the stream bit-identically from the snapshot
///   point, at *any* sample boundary. Restore validates before mutating:
///   on error the target instance is unchanged.
/// - **Marginal:** emitted samples are non-negative (they are frame or
///   slice sizes) and finite.
/// - **Nominal H:** [`nominal_hurst`](Self::nominal_hurst) returns the
///   asymptotic Hurst parameter the model *aims* for, or `None` for a
///   short-range-dependent family (the scene chain) where `H = ½` is the
///   honest asymptote but no LRD claim is made.
pub trait TrafficModel: BlockSource {
    /// Short family name, used in bake-off tables and artifacts.
    fn name(&self) -> &'static str;

    /// Asymptotic Hurst parameter the model targets, if it targets one.
    fn nominal_hurst(&self) -> Option<f64>;

    /// Marginal mean the model was fitted to.
    fn nominal_mean(&self) -> f64;

    /// Marginal variance the model was fitted to.
    fn nominal_variance(&self) -> f64;

    /// FNV-1a hash over the model's *static* configuration — the
    /// compatibility key snapshots are validated against.
    fn param_hash(&self) -> u64;

    /// Serialises the dynamic state into a snapshot section payload.
    fn encode_state(&self, p: &mut Payload);

    /// Restores the dynamic state from a snapshot section, validating
    /// before mutating `self`.
    fn decode_state(&mut self, s: &mut Section) -> Result<(), SnapshotError>;

    /// Captures a self-describing snapshot (versioned, CRC-protected,
    /// parameter-hashed) of the dynamic state.
    fn snapshot(&self, seq: u64) -> Vec<u8> {
        let mut w = SnapshotWriter::new(self.param_hash(), seq);
        w.section(TRAFFIC_STATE_TAG, |p| self.encode_state(p));
        w.finish()
    }

    /// Restores from a [`snapshot`](Self::snapshot) taken on a
    /// same-parameter instance; returns the snapshot's sequence number.
    /// Validates magic, version, CRC and parameter hash before touching
    /// any state.
    fn restore(&mut self, bytes: &[u8]) -> Result<u64, SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        r.require_param_hash(self.param_hash())?;
        let seq = r.seq();
        let mut s = r.section(TRAFFIC_STATE_TAG, "traffic model state")?;
        self.decode_state(&mut s)?;
        s.finish()?;
        Ok(seq)
    }

    /// Draws the next `n` samples as an owned series — the convenience
    /// entry the estimation refit loops use.
    fn sample_series(&mut self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        self.next_block(&mut out);
        out
    }
}

/// The reference trace itself as a degenerate [`TrafficModel`]: replays
/// the stored series, cycling at the end (the same wraparound the
/// multiplexer applies to lagged copies). This is the bake-off's control
/// row — every score is computed for it exactly as for a real model, so
/// "how well can a model do" has an empirical ceiling.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Vec<f64>,
    pos: usize,
    mean: f64,
    variance: f64,
}

impl TraceReplay {
    /// Wraps a non-empty, finite, non-negative series.
    pub fn new(trace: Vec<f64>) -> Self {
        assert!(!trace.is_empty(), "TraceReplay needs a non-empty trace");
        assert!(
            trace.iter().all(|x| x.is_finite() && *x >= 0.0),
            "TraceReplay trace must be finite and non-negative"
        );
        let n = trace.len() as f64;
        let mean = trace.iter().sum::<f64>() / n;
        let variance = trace.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        TraceReplay { trace, pos: 0, mean, variance }
    }

    /// Length of one replay cycle.
    pub fn cycle_len(&self) -> usize {
        self.trace.len()
    }
}

impl BlockSource for TraceReplay {
    fn next_block(&mut self, out: &mut [f64]) {
        for y in out.iter_mut() {
            *y = self.trace[self.pos];
            self.pos += 1;
            if self.pos == self.trace.len() {
                self.pos = 0;
            }
        }
    }
}

impl TrafficModel for TraceReplay {
    fn name(&self) -> &'static str {
        "trace-replay"
    }

    fn nominal_hurst(&self) -> Option<f64> {
        None
    }

    fn nominal_mean(&self) -> f64 {
        self.mean
    }

    fn nominal_variance(&self) -> f64 {
        self.variance
    }

    fn param_hash(&self) -> u64 {
        ParamHasher::new()
            .str("trace-replay")
            .usize(self.trace.len())
            .f64(self.mean)
            .f64(self.variance)
            .finish()
    }

    fn encode_state(&self, p: &mut Payload) {
        p.put_usize(self.pos);
    }

    fn decode_state(&mut self, s: &mut Section) -> Result<(), SnapshotError> {
        let pos = s.get_usize()?;
        if pos >= self.trace.len() {
            return Err(SnapshotError::Invalid { what: "replay position out of range" });
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_cycles_and_restores() {
        let mut m = TraceReplay::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.sample_series(5), vec![1.0, 2.0, 3.0, 1.0, 2.0]);
        let snap = m.snapshot(7);
        let tail = m.sample_series(4);
        let mut fresh = TraceReplay::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(fresh.restore(&snap).unwrap(), 7);
        assert_eq!(fresh.sample_series(4), tail);
    }

    #[test]
    fn replay_rejects_foreign_snapshot() {
        let m = TraceReplay::new(vec![1.0, 2.0, 3.0]);
        let snap = m.snapshot(0);
        let mut other = TraceReplay::new(vec![4.0, 5.0]);
        assert!(matches!(
            other.restore(&snap),
            Err(SnapshotError::ParamHashMismatch { .. })
        ));
        // And the failed restore left the target untouched.
        assert_eq!(other.sample_series(2), vec![4.0, 5.0]);
    }

    #[test]
    fn replay_nominal_moments_match_trace() {
        let m = TraceReplay::new(vec![2.0, 4.0, 6.0, 8.0]);
        assert!((m.nominal_mean() - 5.0).abs() < 1e-12);
        assert!((m.nominal_variance() - 5.0).abs() < 1e-12);
        assert_eq!(m.nominal_hurst(), None);
    }
}
