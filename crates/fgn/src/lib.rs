//! # vbr-fgn
//!
//! Long-range-dependent sample-path generators (paper §4):
//!
//! - [`Hosking`] — the paper's generator: exact fractional
//!   ARIMA(0, d, 0) via the Durbin–Levinson recursion (Eqs 6–12), `O(n²)`.
//! - [`DaviesHarte`] — exact fractional Gaussian noise via circulant
//!   embedding, `O(n log n)`; the modern answer to the paper's complaint
//!   that 171 000 points took 10 hours in 1994.
//! - [`MarginalTransform`] — the probability-integral transform of Eq (13)
//!   that imposes the Gamma/Pareto marginal on a Gaussian LRD path,
//!   optionally through the paper's 10 000-point lookup table.
//!
//! ```
//! use vbr_fgn::{DaviesHarte, MarginalTransform, TableMode};
//! use vbr_stats::dist::GammaPareto;
//!
//! let fgn = DaviesHarte::new(0.8, 1.0);
//! let gauss = fgn.generate(1000, 42);
//! let marginal = GammaPareto::from_params(27_791.0, 6_254.0, 9.0);
//! let xform = MarginalTransform::new(&marginal, 0.0, 1.0, TableMode::Table(10_000));
//! let traffic = xform.map_series(&gauss);
//! assert!(traffic.iter().all(|&b| b > 0.0)); // bytes per frame, positive
//! ```

#![warn(missing_docs)]

pub mod acvf;
pub mod arma;
pub mod batch;
pub mod cache;
pub mod davies_harte;
pub mod error;
pub mod hosking;
pub mod marginal;
pub mod mwm;
pub mod robust;
pub mod stream;
pub mod traffic;

pub use acvf::{farima_acf, fgn_acvf, hurst_to_d};
pub use arma::{arma_noise, yule_walker, ArmaFilter};
pub use cache::{
    farima_acf_cached, farima_circulant_spectrum_cached, fgn_acvf_cached,
    fgn_circulant_spectrum_cached,
};
pub use batch::{BatchFarima, BatchFgn, BatchStream};
pub use davies_harte::{circulant_spectrum, fbm_path, DaviesHarte};
pub use error::FgnError;
pub use hosking::Hosking;
pub use marginal::{MarginalTransform, TableMode};
pub use mwm::{MwmConfig, MwmModel};
pub use robust::{FgnEngine, RobustFgn, RobustFgnResult};
pub use traffic::{TraceReplay, TrafficModel, TRAFFIC_STATE_TAG};
pub use stream::{
    farima_via_circulant, BlockSource, CirculantStream, FarimaStream, FgnStream, StreamState,
};
