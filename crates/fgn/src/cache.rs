//! Memoization of the deterministic pre-work of LRD generation.
//!
//! The expensive but *input-independent* parts of a Davies–Harte or
//! Hosking generation — the theoretical autocovariance sequence and, for
//! circulant embedding, the eigenvalue spectrum (one `O(m log m)` FFT) —
//! depend only on `(H, n)`. Workloads like the MuxSim sweeps, the
//! robust-estimator benchmarks and batch screenplay generation call the
//! generators many times with identical parameters, so these caches turn
//! every repeat into a hash lookup. Keys use the exact bit pattern of
//! the float parameter: two `H` values compare equal iff the uncached
//! computation would be identical, so caching can never change output.
//!
//! Each key owns a build lock: concurrent first callers for the *same*
//! key block on one builder instead of racing to duplicate the work
//! (which made parallel batch generation slower than serial — every
//! worker rebuilt the same multi-megabyte spectrum). Different keys
//! still build concurrently.
//!
//! Caches are process-global and size-bounded (entries at the paper
//! scale run to megabytes); when a cache is full, admitting a new key
//! evicts the least-recently-used entry *only* — entries are pure
//! functions of their key and rebuild on demand, but interleaved
//! workloads over many `(d, n)` pairs keep their hot entries resident.
//! (The old policy cleared the whole map, so a single cold key wiped
//! every hot entry and the next pass recomputed them all.) Hits, misses
//! and evictions are counted through `vbr_stats::obs`.

use crate::acvf::{farima_acf, fgn_acvf};
use crate::davies_harte::circulant_spectrum;
use crate::error::FgnError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use vbr_stats::obs::{self, Counter};

/// Per-cache entry bound: ACVF/spectrum vectors at the 171k-frame paper
/// scale are ~8 MB each, so a handful of distinct (H, n) pairs is all a
/// realistic workload holds at once.
const MAX_ENTRIES: usize = 16;

type Key = (u64, usize);
/// One slot per key: the outer map hands out the slot under a short
/// lock; the slot's own mutex serialises building, so concurrent first
/// callers of one key wait for a single build instead of duplicating it.
type Slot = Arc<Mutex<Option<Arc<Vec<f64>>>>>;

/// The slot map plus a logical clock: every access stamps its entry,
/// and eviction removes the entry with the oldest stamp.
#[derive(Default)]
struct LruMap {
    map: HashMap<Key, (Slot, u64)>,
    tick: u64,
}

type VecCache = Mutex<LruMap>;

fn fgn_acvf_cache() -> &'static VecCache {
    static C: OnceLock<VecCache> = OnceLock::new();
    C.get_or_init(|| Mutex::new(LruMap::default()))
}

fn farima_acf_cache() -> &'static VecCache {
    static C: OnceLock<VecCache> = OnceLock::new();
    C.get_or_init(|| Mutex::new(LruMap::default()))
}

fn spectrum_cache() -> &'static VecCache {
    static C: OnceLock<VecCache> = OnceLock::new();
    C.get_or_init(|| Mutex::new(LruMap::default()))
}

fn farima_spectrum_cache() -> &'static VecCache {
    static C: OnceLock<VecCache> = OnceLock::new();
    C.get_or_init(|| Mutex::new(LruMap::default()))
}

fn hosking_reflection_cache() -> &'static VecCache {
    static C: OnceLock<VecCache> = OnceLock::new();
    C.get_or_init(|| Mutex::new(LruMap::default()))
}

/// Fetches the key's slot, stamping it with the cache's logical clock.
/// Admitting a new key into a full cache evicts the least-recently-used
/// entry only (in-flight holders keep their own `Arc` to the evicted
/// slot; hot entries stay resident — the point of the LRU order).
fn slot_for(cache: &'static VecCache, key: Key) -> Slot {
    // The map lock covers lookup/insert/evict only — builds run under
    // the per-key slot lock, and nothing here executes an FFT. A waiting
    // acquisition is therefore always momentary, and is counted into the
    // shared `plan_cache_contention` obs counter so the fleet bench can
    // prove the lock scope stays shard-friendly.
    let mut lru = match cache.try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::WouldBlock) => {
            obs::counter_add(Counter::PlanCacheContention, 1);
            cache.lock().expect("acvf cache poisoned")
        }
        Err(std::sync::TryLockError::Poisoned(_)) => panic!("acvf cache poisoned"),
    };
    lru.tick += 1;
    let tick = lru.tick;
    if let Some((slot, stamp)) = lru.map.get_mut(&key) {
        *stamp = tick;
        return Arc::clone(slot);
    }
    if lru.map.len() >= MAX_ENTRIES {
        if let Some(cold) = lru.map.iter().min_by_key(|&(_, &(_, s))| s).map(|(&k, _)| k) {
            lru.map.remove(&cold);
            obs::counter_add(Counter::FgnCacheEvict, 1);
        }
    }
    let (slot, _) = lru.map.entry(key).or_insert_with(|| (Slot::default(), tick));
    Arc::clone(slot)
}

fn memoize(
    cache: &'static VecCache,
    key: Key,
    build: impl FnOnce() -> Vec<f64>,
) -> Arc<Vec<f64>> {
    let slot = slot_for(cache, key);
    let mut guard = slot.lock().expect("acvf cache slot poisoned");
    if let Some(hit) = guard.as_ref() {
        obs::counter_add(Counter::FgnCacheHit, 1);
        return Arc::clone(hit);
    }
    obs::counter_add(Counter::FgnCacheMiss, 1);
    let value = Arc::new(build());
    *guard = Some(Arc::clone(&value));
    value
}

fn memoize_try(
    cache: &'static VecCache,
    key: Key,
    build: impl FnOnce() -> Result<Vec<f64>, FgnError>,
) -> Result<Arc<Vec<f64>>, FgnError> {
    let slot = slot_for(cache, key);
    let mut guard = slot.lock().expect("acvf cache slot poisoned");
    if let Some(hit) = guard.as_ref() {
        obs::counter_add(Counter::FgnCacheHit, 1);
        return Ok(Arc::clone(hit));
    }
    obs::counter_add(Counter::FgnCacheMiss, 1);
    // Failures are not cached: the slot stays empty and the next caller
    // retries (failure here means a genuinely non-PSD embedding, which
    // is deterministic per key, so retries fail fast anyway).
    let value = Arc::new(build()?);
    *guard = Some(Arc::clone(&value));
    Ok(value)
}

/// Memoized [`fgn_acvf`]: autocovariances `γ_0..=γ_max_lag` of
/// unit-variance fGn, shared across repeat calls with the same
/// `(hurst, max_lag)`.
pub fn fgn_acvf_cached(hurst: f64, max_lag: usize) -> Arc<Vec<f64>> {
    memoize(fgn_acvf_cache(), (hurst.to_bits(), max_lag), || fgn_acvf(hurst, max_lag))
}

/// Memoized [`farima_acf`]: autocorrelations `ρ_0..=ρ_max_lag` of
/// fractional ARIMA(0, d, 0), shared across repeat calls — Hosking's
/// `O(n²)` recursion re-reads the whole sequence every generation.
pub fn farima_acf_cached(d: f64, max_lag: usize) -> Arc<Vec<f64>> {
    memoize(farima_acf_cache(), (d.to_bits(), max_lag), || farima_acf(d, max_lag))
}

/// Memoized circulant eigenvalue spectrum for fGn embedding: the
/// composition `circulant_spectrum(&fgn_acvf(hurst, m/2))` — an `O(m)`
/// autocovariance build plus an `O(m log m)` FFT — computed once per
/// `(hurst, m)` and then shared. `m` is the (power-of-two) circulant
/// size. The fGn embedding is provably PSD, so the error branch only
/// fires on FFT round-off beyond the clamp tolerance; failures are not
/// cached.
pub fn fgn_circulant_spectrum_cached(hurst: f64, m: usize) -> Result<Arc<Vec<f64>>, FgnError> {
    memoize_try(spectrum_cache(), (hurst.to_bits(), m), || {
        circulant_spectrum(&fgn_acvf_cached(hurst, m / 2))
    })
}

/// Memoized circulant eigenvalue spectrum for the fARIMA(0, d, 0)
/// autocorrelation — the [`crate::FarimaStream`] / fast-batch analogue
/// of [`fgn_circulant_spectrum_cached`]. Unlike the fGn embedding, the
/// fARIMA embedding is not provably PSD at every `(d, m)`; a genuinely
/// negative spectrum is reported as [`FgnError::NonPsdEmbedding`] and
/// not cached.
pub fn farima_circulant_spectrum_cached(d: f64, m: usize) -> Result<Arc<Vec<f64>>, FgnError> {
    memoize_try(farima_spectrum_cache(), (d.to_bits(), m), || {
        circulant_spectrum(&farima_acf_cached(d, m / 2))
    })
}

/// The deterministic half of Hosking's Durbin–Levinson recursion
/// (Eqs 7–10): partial-correlation ("reflection") coefficients
/// `φ_kk`, `k = 1..n−1`, for the fARIMA(0, d, 0) autocorrelation.
/// Exactly the arithmetic the generator used to run inline, with the
/// sample-path terms removed — so the coefficients (and therefore the
/// generated paths) are bit-identical to the unmemoized recursion.
fn hosking_reflections(rho: &[f64], n: usize) -> Vec<f64> {
    let mut refl = Vec::with_capacity(n.saturating_sub(1));
    // φ_{k,j} from the previous iteration (φ_{k−1,·}, 1-indexed by j).
    let mut phi_prev: Vec<f64> = Vec::with_capacity(n);
    let mut phi: Vec<f64> = Vec::with_capacity(n);
    let mut n_prev = 0.0f64; // N_0 = 0
    let mut d_prev = 1.0f64; // D_0 = 1
    for k in 1..n {
        // Eq (7): N_k = ρ_k − Σ_{j=1}^{k−1} φ_{k−1,j} ρ_{k−j}
        let mut nk = rho[k];
        for j in 1..k {
            nk -= phi_prev[j - 1] * rho[k - j];
        }
        // Eq (8): D_k = D_{k−1} − N_{k−1}² / D_{k−1}
        let dk = d_prev - n_prev * n_prev / d_prev;
        // Eq (9): φ_kk = N_k / D_k
        let phi_kk = nk / dk;
        // Eq (10): φ_kj = φ_{k−1,j} − φ_kk φ_{k−1,k−j}
        phi.clear();
        for j in 1..k {
            phi.push(phi_prev[j - 1] - phi_kk * phi_prev[k - j - 1]);
        }
        phi.push(phi_kk);
        refl.push(phi_kk);
        std::mem::swap(&mut phi_prev, &mut phi);
        n_prev = nk;
        d_prev = dk;
    }
    refl
}

/// Memoized Hosking partial-correlation coefficients `φ_kk` for
/// `k = 1..n−1` — the `O(n²)` deterministic setup of the exact
/// generator, shared across repeat `(d, n)` runs. With these in hand a
/// generation needs only the Eq (10) row update and the Eq (11)
/// conditional-mean dot product per step; the Eq (7) inner product
/// against the ACF (half the recursion's flops) is never redone.
pub fn hosking_reflections_cached(d: f64, n: usize) -> Arc<Vec<f64>> {
    memoize(hosking_reflection_cache(), (d.to_bits(), n), || {
        let rho = farima_acf_cached(d, n);
        hosking_reflections(&rho, n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_acvf_matches_uncached() {
        for &(h, n) in &[(0.6, 100usize), (0.8, 4096), (0.3, 33)] {
            assert_eq!(*fgn_acvf_cached(h, n), fgn_acvf(h, n));
        }
        for &(d, n) in &[(0.3, 100usize), (0.0, 50)] {
            assert_eq!(*farima_acf_cached(d, n), farima_acf(d, n));
        }
    }

    #[test]
    fn repeat_lookups_share_storage() {
        let a = fgn_acvf_cached(0.77, 2048);
        let b = fgn_acvf_cached(0.77, 2048);
        assert!(Arc::ptr_eq(&a, &b));
        // A different H (even by one ulp) is a different entry.
        let c = fgn_acvf_cached(0.77 + f64::EPSILON, 2048);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn cached_spectrum_matches_direct_composition() {
        let m = 1024;
        let direct = circulant_spectrum(&fgn_acvf(0.8, m / 2)).unwrap();
        let cached = fgn_circulant_spectrum_cached(0.8, m).unwrap();
        assert_eq!(*cached, direct);
        let again = fgn_circulant_spectrum_cached(0.8, m).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn cached_farima_spectrum_matches_direct_composition() {
        let m = 512;
        let direct = circulant_spectrum(&farima_acf(0.3, m / 2)).unwrap();
        let cached = farima_circulant_spectrum_cached(0.3, m).unwrap();
        assert_eq!(*cached, direct);
    }

    #[test]
    fn racing_first_callers_build_once() {
        // Hammer one brand-new key from many threads; the per-key build
        // lock must hand every thread the same Arc.
        let h = 0.654_321;
        let arcs: Vec<Arc<Vec<f64>>> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..8).map(|_| s.spawn(|| fgn_acvf_cached(h, 8192))).collect();
            handles.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }
}
