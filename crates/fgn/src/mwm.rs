//! The multifractal wavelet model (MWM, Riedi et al.): a Haar synthesis
//! pyramid with random multiplicative innovations.
//!
//! Where fGn/fARIMA is *additive* Gaussian (then marginal-transformed),
//! the MWM is *multiplicative* and positive by construction: starting
//! from a non-negative root approximation coefficient, each synthesis
//! level splits every coefficient `a` into two children
//! `(a ± d)/√2` with `d = m·a` and a symmetric-beta multiplier
//! `m = 2·Beta(p, p) − 1 ∈ [−1, 1]`, so children stay non-negative and
//! the per-octave detail-to-approximation energy ratio is
//! `E[m²] = 1/(2p + 1)`. Choosing `p` per octave to match a measured
//! Haar logscale diagram reproduces the trace's second-order scaling —
//! including an LRD slope — without any Gaussian assumption. The
//! analysis half is `vbr_lrd::logscale_diagram` (which reports both the
//! detail variances and the approximation energies); the fitting glue
//! lives in `vbr-model` so this crate stays free of the estimator stack.

use vbr_stats::dist::{ContinuousDist, Gamma};
use vbr_stats::rng::Xoshiro256;
use vbr_stats::snapshot::{Payload, Section, SnapshotError};
use vbr_stats::ParamHasher;

use crate::stream::BlockSource;
use crate::traffic::TrafficModel;

/// Static configuration of an [`MwmModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct MwmConfig {
    /// Mean of the root (coarsest) approximation coefficient — in root
    /// scale, i.e. `sample mean × 2^{J/2}` for `J` levels.
    pub root_mean: f64,
    /// Standard deviation of the root coefficient (Gaussian, clamped at
    /// zero to keep the pyramid non-negative).
    pub root_sd: f64,
    /// Symmetric-beta shape per octave, finest first: `shapes[j − 1]` is
    /// the shape used for the multipliers that create the octave-`j`
    /// details. Length = number of synthesis levels `J`; one synthesis
    /// block emits `2^J` samples.
    pub shapes: Vec<f64>,
    /// Hurst parameter the fitted scaling targets (`None` when the fit
    /// did not establish one).
    pub nominal_hurst: Option<f64>,
    /// Sample mean the model was fitted to.
    pub nominal_mean: f64,
    /// Sample variance the model was fitted to.
    pub nominal_variance: f64,
}

impl MwmConfig {
    /// Number of synthesis levels `J`.
    pub fn levels(&self) -> usize {
        self.shapes.len()
    }

    /// Samples per independent synthesis block, `2^J`.
    pub fn block_len(&self) -> usize {
        1usize << self.levels()
    }
}

/// A multifractal wavelet traffic generator. Blocks of `2^J` samples are
/// synthesised independently (the model's correlation horizon is one
/// block; choose `J` so the block covers the lags of interest).
#[derive(Debug, Clone)]
pub struct MwmModel {
    cfg: MwmConfig,
    rng: Xoshiro256,
    /// Current synthesis block.
    buf: Vec<f64>,
    /// Emit position in `buf`; `buf.len()` means a refill is due.
    pos: usize,
}

impl MwmModel {
    /// Builds a model from its configuration. Panics on an invalid
    /// configuration (no levels, non-positive shapes or root mean,
    /// negative root sd, more than 30 levels).
    pub fn new(cfg: MwmConfig, seed: u64) -> Self {
        assert!(!cfg.shapes.is_empty(), "MwmModel needs at least one level");
        assert!(cfg.shapes.len() <= 30, "MwmModel: too many levels");
        assert!(
            cfg.shapes.iter().all(|&p| p > 0.0 && p.is_finite()),
            "MwmModel: beta shapes must be positive and finite"
        );
        assert!(
            cfg.root_mean > 0.0 && cfg.root_mean.is_finite(),
            "MwmModel: root mean must be positive"
        );
        assert!(
            cfg.root_sd >= 0.0 && cfg.root_sd.is_finite(),
            "MwmModel: root sd must be non-negative"
        );
        let block = cfg.block_len();
        MwmModel {
            cfg,
            rng: Xoshiro256::seed_from_u64(seed),
            buf: vec![0.0; block],
            pos: block, // force a refill on the first draw
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &MwmConfig {
        &self.cfg
    }

    /// Synthesises one fresh block into `buf` (in place, coarse→fine).
    fn refill(&mut self) {
        let j_levels = self.cfg.levels();
        // Root approximation coefficient: Gaussian, clamped non-negative.
        self.buf[0] =
            (self.cfg.root_mean + self.cfg.root_sd * self.rng.standard_normal()).max(0.0);
        let mut len = 1usize;
        for level in 0..j_levels {
            // This level creates the details of octave `j = J − level`.
            let shape = self.cfg.shapes[j_levels - level - 1];
            let gamma = Gamma::new(shape, 1.0);
            // Expand in place from the end: iteration `k` writes indices
            // `2k, 2k+1 ≥ k`, never clobbering an unread coefficient.
            for k in (0..len).rev() {
                let a = self.buf[k];
                let g1 = gamma.sample(&mut self.rng);
                let g2 = gamma.sample(&mut self.rng);
                let sum = g1 + g2;
                // Beta(p, p) via the two-gamma ratio; a double underflow
                // (possible for tiny shapes deep in the quantile tails)
                // degrades to the symmetric midpoint m = 0.
                let m = if sum > 0.0 { 2.0 * g1 / sum - 1.0 } else { 0.0 };
                let d = m * a;
                self.buf[2 * k] = (a + d) / std::f64::consts::SQRT_2;
                self.buf[2 * k + 1] = (a - d) / std::f64::consts::SQRT_2;
            }
            len *= 2;
        }
    }
}

impl BlockSource for MwmModel {
    fn next_block(&mut self, out: &mut [f64]) {
        let mut filled = 0usize;
        while filled < out.len() {
            if self.pos == self.buf.len() {
                self.refill();
                self.pos = 0;
            }
            let take = (out.len() - filled).min(self.buf.len() - self.pos);
            out[filled..filled + take]
                .copy_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            filled += take;
        }
    }
}

impl TrafficModel for MwmModel {
    fn name(&self) -> &'static str {
        "mwm"
    }

    fn nominal_hurst(&self) -> Option<f64> {
        self.cfg.nominal_hurst
    }

    fn nominal_mean(&self) -> f64 {
        self.cfg.nominal_mean
    }

    fn nominal_variance(&self) -> f64 {
        self.cfg.nominal_variance
    }

    fn param_hash(&self) -> u64 {
        let mut h = ParamHasher::new()
            .str("mwm")
            .usize(self.cfg.levels())
            .f64(self.cfg.root_mean)
            .f64(self.cfg.root_sd)
            .f64(self.cfg.nominal_hurst.unwrap_or(f64::NAN))
            .f64(self.cfg.nominal_mean)
            .f64(self.cfg.nominal_variance);
        for &p in &self.cfg.shapes {
            h = h.f64(p);
        }
        h.finish()
    }

    fn encode_state(&self, p: &mut Payload) {
        p.put_u64_slice(&self.rng.state());
        p.put_f64_slice(&self.buf);
        p.put_usize(self.pos);
    }

    fn decode_state(&mut self, s: &mut Section) -> Result<(), SnapshotError> {
        let rng_vec = s.get_u64_vec()?;
        let rng_state: [u64; 4] = rng_vec
            .try_into()
            .map_err(|_| SnapshotError::Invalid { what: "rng state is not 4 words" })?;
        let rng = Xoshiro256::from_state(rng_state)
            .ok_or(SnapshotError::Invalid { what: "all-zero rng state" })?;
        let buf = s.get_f64_vec()?;
        if buf.len() != self.cfg.block_len() {
            return Err(SnapshotError::Invalid { what: "mwm block length mismatch" });
        }
        let pos = s.get_usize()?;
        if pos > buf.len() {
            return Err(SnapshotError::Invalid { what: "mwm position out of range" });
        }
        self.rng = rng;
        self.buf = buf;
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> MwmConfig {
        MwmConfig {
            root_mean: 1000.0 * 2.0f64.powf(4.0), // J = 8 → 2^{8/2}
            root_sd: 300.0,
            shapes: vec![4.0, 3.5, 3.0, 2.5, 2.0, 1.8, 1.5, 1.2],
            nominal_hurst: Some(0.8),
            nominal_mean: 1000.0,
            nominal_variance: 90_000.0,
        }
    }

    #[test]
    fn output_is_non_negative_and_near_nominal_mean() {
        let mut m = MwmModel::new(test_cfg(), 1);
        let xs = m.sample_series(1 << 14);
        assert!(xs.iter().all(|&x| x >= 0.0 && x.is_finite()));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (mean - 1000.0).abs() / 1000.0 < 0.1,
            "mean {mean} vs nominal 1000"
        );
    }

    #[test]
    fn deterministic_across_block_boundaries() {
        let mut a = MwmModel::new(test_cfg(), 7);
        let mut b = MwmModel::new(test_cfg(), 7);
        let whole = a.sample_series(1000);
        // Draw the same 1000 samples in ragged chunks.
        let mut got = Vec::new();
        for &k in &[1usize, 255, 256, 31, 457] {
            let mut chunk = vec![0.0; k];
            b.next_block(&mut chunk);
            got.extend_from_slice(&chunk);
        }
        assert_eq!(whole, got);
    }

    #[test]
    fn snapshot_restores_mid_block() {
        let mut m = MwmModel::new(test_cfg(), 3);
        let _ = m.sample_series(137); // stop mid-block
        let snap = m.snapshot(42);
        let want = m.sample_series(513);
        let mut fresh = MwmModel::new(test_cfg(), 999); // different seed: state comes from the snapshot
        assert_eq!(fresh.restore(&snap).unwrap(), 42);
        assert_eq!(fresh.sample_series(513), want);
    }

    #[test]
    fn snapshot_rejects_different_params() {
        let m = MwmModel::new(test_cfg(), 3);
        let snap = m.snapshot(0);
        let mut other_cfg = test_cfg();
        other_cfg.shapes[0] = 9.0;
        let mut other = MwmModel::new(other_cfg, 3);
        assert!(other.restore(&snap).is_err());
    }

    #[test]
    fn multiplier_energy_tracks_shape() {
        // With a single level and shape p, E[m²] = 1/(2p+1): the detail/
        // approx energy ratio of the emitted pairs must match.
        let p = 2.0;
        let cfg = MwmConfig {
            root_mean: 100.0 * std::f64::consts::SQRT_2,
            root_sd: 0.0,
            shapes: vec![p],
            nominal_hurst: None,
            nominal_mean: 100.0,
            nominal_variance: 0.0,
        };
        let mut m = MwmModel::new(cfg, 11);
        let xs = m.sample_series(60_000);
        let mut dd = 0.0;
        let mut aa = 0.0;
        for pair in xs.chunks_exact(2) {
            let d = (pair[0] - pair[1]) / std::f64::consts::SQRT_2;
            let a = (pair[0] + pair[1]) / std::f64::consts::SQRT_2;
            dd += d * d;
            aa += a * a;
        }
        let want = 1.0 / (2.0 * p + 1.0);
        let got = dd / aa;
        assert!(
            (got - want).abs() / want < 0.05,
            "E[m²] {got:.4} vs theoretical {want:.4}"
        );
    }
}
