//! ARMA(p, q) filtering — the short-range augmentation the paper leaves
//! as future work (§4: "An additional set of short-term correlation
//! parameters may be included by combining this model with an ARMA
//! filter…").
//!
//! The filter is applied to a (Gaussian) driving sequence:
//! `y_t = Σ φ_i y_{t−i} + x_t + Σ θ_j x_{t−j}`, then rescaled to unit
//! marginal variance so it can slot in front of the marginal transform
//! without disturbing the target distribution. Driving the filter with
//! fractional Gaussian noise yields an LRD process with tunable
//! short-range structure (a fARIMA(p, d, q)-like process).

use vbr_stats::rng::Xoshiro256;

/// An ARMA(p, q) filter with Gaussian-variance normalisation.
#[derive(Debug, Clone)]
pub struct ArmaFilter {
    /// Autoregressive coefficients φ₁..φ_p.
    ar: Vec<f64>,
    /// Moving-average coefficients θ₁..θ_q.
    ma: Vec<f64>,
}

impl ArmaFilter {
    /// Creates a filter. The AR polynomial must be (empirically) stable;
    /// this is checked by requiring `Σ|φ_i| < 1`, a sufficient condition
    /// that covers the models used for video (small p, positive φ).
    pub fn new(ar: Vec<f64>, ma: Vec<f64>) -> Self {
        let s: f64 = ar.iter().map(|c| c.abs()).sum();
        assert!(
            s < 1.0,
            "AR coefficients must satisfy sum(|phi|) < 1 for guaranteed stability, got {s}"
        );
        ArmaFilter { ar, ma }
    }

    /// Pure AR(1) shortcut.
    pub fn ar1(rho: f64) -> Self {
        ArmaFilter::new(vec![rho], Vec::new())
    }

    /// AR order `p`.
    pub fn p(&self) -> usize {
        self.ar.len()
    }

    /// MA order `q`.
    pub fn q(&self) -> usize {
        self.ma.len()
    }

    /// Applies the filter to a driving sequence and rescales the output
    /// to the driving sequence's sample variance (so downstream marginal
    /// transforms see the same scale).
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let n = x.len();
        if n == 0 {
            return Vec::new();
        }
        let mut y = vec![0.0f64; n];
        for t in 0..n {
            let mut v = x[t];
            for (j, &th) in self.ma.iter().enumerate() {
                if t > j {
                    v += th * x[t - 1 - j];
                }
            }
            for (i, &ph) in self.ar.iter().enumerate() {
                if t > i {
                    v += ph * y[t - 1 - i];
                }
            }
            y[t] = v;
        }
        // Normalise to the input's variance.
        let var_in = variance(x);
        let var_out = variance(&y);
        if var_out > 0.0 && var_in > 0.0 {
            let k = (var_in / var_out).sqrt();
            for v in &mut y {
                *v *= k;
            }
        }
        y
    }
}

fn variance(x: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    x.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / n
}

/// Yule–Walker estimation of AR(p) coefficients from a sample
/// autocorrelation sequence `r(0..=p)`, via the Levinson–Durbin
/// recursion. Returns `(phi, innovation variance ratio)`.
pub fn yule_walker(acf: &[f64], p: usize) -> (Vec<f64>, f64) {
    assert!(acf.len() > p, "need at least p+1 autocorrelations");
    assert!((acf[0] - 1.0).abs() < 1e-9, "acf must be normalised (r(0)=1)");
    let mut phi = vec![0.0f64; p];
    let mut prev = vec![0.0f64; p];
    let mut e = 1.0f64;
    for k in 1..=p {
        let mut acc = acf[k];
        for j in 1..k {
            acc -= prev[j - 1] * acf[k - j];
        }
        let refl = acc / e;
        phi[k - 1] = refl;
        for j in 1..k {
            phi[j - 1] = prev[j - 1] - refl * prev[k - 1 - j];
        }
        e *= 1.0 - refl * refl;
        prev[..k].copy_from_slice(&phi[..k]);
    }
    (phi, e)
}

/// Convenience: generate `n` points of ARMA-filtered white noise with
/// unit variance.
pub fn arma_noise(filter: &ArmaFilter, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let white: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    filter.filter(&white)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::acf::autocorrelation;

    #[test]
    fn ar1_filter_has_geometric_acf() {
        let f = ArmaFilter::ar1(0.7);
        let y = arma_noise(&f, 100_000, 1);
        let r = autocorrelation(&y, 5);
        for (k, &rk) in r.iter().enumerate().skip(1) {
            assert!(
                (rk - 0.7f64.powi(k as i32)).abs() < 0.03,
                "lag {k}: {rk} vs {}",
                0.7f64.powi(k as i32)
            );
        }
    }

    #[test]
    fn output_variance_matches_input() {
        let f = ArmaFilter::new(vec![0.5, 0.2], vec![0.3]);
        let y = arma_noise(&f, 50_000, 2);
        let v = variance(&y);
        assert!((v - 1.0).abs() < 0.08, "variance {v}");
    }

    #[test]
    fn ma_only_filter_has_finite_memory() {
        // MA(1): correlation only at lag 1 (θ/(1+θ²)), zero beyond.
        let th = 0.8;
        let f = ArmaFilter::new(Vec::new(), vec![th]);
        let y = arma_noise(&f, 100_000, 3);
        let r = autocorrelation(&y, 4);
        let want = th / (1.0 + th * th);
        assert!((r[1] - want).abs() < 0.02, "r(1) = {} vs {}", r[1], want);
        for (k, &rk) in r.iter().enumerate().skip(2) {
            assert!(rk.abs() < 0.02, "r({k}) = {rk} should vanish");
        }
    }

    #[test]
    fn filtering_fgn_keeps_lrd_adds_srd() {
        use crate::DaviesHarte;
        use vbr_stats::acf::autocorrelation as acf;
        let fgn = DaviesHarte::new(0.8, 1.0).generate(100_000, 4);
        let filtered = ArmaFilter::ar1(0.85).filter(&fgn);
        let r_raw = acf(&fgn, 200);
        let r_f = acf(&filtered, 200);
        // SRD boost at short lags…
        assert!(r_f[1] > r_raw[1] + 0.2, "r(1): {} vs {}", r_f[1], r_raw[1]);
        // …while the long-lag hyperbolic correlations survive.
        assert!(r_f[200] > 0.05, "r(200) = {} should stay LRD-positive", r_f[200]);
    }

    #[test]
    fn yule_walker_recovers_ar2() {
        // Generate AR(2), estimate back.
        let truth = ArmaFilter::new(vec![0.5, 0.3], Vec::new());
        let y = arma_noise(&truth, 200_000, 5);
        let r = autocorrelation(&y, 4);
        let (phi, e) = yule_walker(&r, 2);
        assert!((phi[0] - 0.5).abs() < 0.03, "phi1 {}", phi[0]);
        assert!((phi[1] - 0.3).abs() < 0.03, "phi2 {}", phi[1]);
        assert!(e > 0.0 && e < 1.0);
    }

    #[test]
    fn yule_walker_white_noise_gives_zero_coefficients() {
        let r = [1.0, 0.0, 0.0, 0.0];
        let (phi, e) = yule_walker(&r, 3);
        for &p in &phi {
            assert!(p.abs() < 1e-12);
        }
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert!(ArmaFilter::ar1(0.5).filter(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_ar_rejected() {
        ArmaFilter::new(vec![0.9, 0.3], Vec::new());
    }
}
