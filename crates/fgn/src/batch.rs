//! Shared-spectrum batch generation: B independent fGn/fARIMA sources
//! driven by ONE circulant spectrum, one real-FFT plan, and one
//! synthesis scratch.
//!
//! Large-scale simulation (the paper's Sec. V traces, and the mux
//! experiments that superpose tens of sources) needs many *independent*
//! sources with *identical* second-order statistics. Building B
//! [`crate::FgnStream`]s duplicates everything that is per-model rather
//! than per-source: the circulant spectrum (`m` floats each), the FFT
//! plan lookups, and the synthesis scratch. [`BatchStream`] keeps one
//! copy of each and a tiny [`SourceState`](crate::stream) per source, so
//! the marginal cost of another source is `O(block + overlap)` floats
//! of state plus its RNG — not another spectrum.
//!
//! ## Bit-identity contract
//!
//! Each source owns its RNG (seeded independently) and its window/seam
//! buffers; only *stateless* scratch is shared. A source's refill reads
//! and writes nothing outside its own state and the shared scratch it
//! fully overwrites, so draws from a batched source are **bit-identical
//! to the same-seed independent stream, draw for draw**, at any block /
//! overlap geometry and any interleaving of `next_block` calls across
//! sources. Proptests in `crates/fgn/tests/proptests.rs` pin this.
//!
//! ```
//! use vbr_fgn::{BatchFgn, FgnStream};
//! let mut batch = BatchFgn::try_new(0.8, 1.0, 64, &[1, 2, 3]).unwrap();
//! let mut solo = FgnStream::new(0.8, 1.0, 64, 2);
//! let mut a = vec![0.0; 100];
//! let mut b = vec![0.0; 100];
//! batch.next_block(1, &mut a); // source index 1 == seed 2
//! solo.next_block(&mut b);
//! assert_eq!(a, b);
//! ```

use crate::cache::{farima_circulant_spectrum_cached, fgn_circulant_spectrum_cached};
use crate::davies_harte::{synthesise_real_lanes_into, LaneSynthScratch};
use crate::error::FgnError;
use crate::stream::{
    check_geometry, next_block_source, prefix_exact_geometry, SharedSpectrum, SourceState,
    StreamState, WindowScratch,
};
use std::sync::Arc;
use vbr_fft::next_pow2;
use vbr_stats::obs::{self, Counter};
use vbr_stats::rng::Xoshiro256;
use vbr_stats::snapshot::SnapshotError;

/// The shared-spectrum engine: B circulant sources over one spectrum.
///
/// Construction mirrors [`crate::CirculantStream`]'s geometry exactly;
/// use [`BatchFgn`] / [`BatchFarima`] for validated model-level entry
/// points.
#[derive(Debug, Clone)]
pub struct BatchStream {
    sd: f64,
    block: usize,
    overlap: usize,
    /// `None` is the degenerate `block == 1` white-noise path, exactly
    /// as in [`crate::CirculantStream`].
    spectrum: Option<SharedSpectrum>,
    sources: Vec<SourceState>,
    /// One synthesis workspace for the whole batch — fully overwritten
    /// by every refill, so sharing it cannot couple sources.
    scratch: WindowScratch,
    /// Lane-parallel refill workspace of [`advance_rows`]
    /// (`Self::advance_rows`): normal draws, interleaved half-spectra
    /// and window samples for up to `lanes()` sources at a time.
    lane_scratch: LaneSynthScratch,
    /// Lane-interleaved window samples of the current refill cohort.
    lane_buf: Vec<f64>,
}

impl BatchStream {
    fn from_spectrum(
        spectrum: Option<Arc<Vec<f64>>>,
        sd: f64,
        block: usize,
        overlap: usize,
        seeds: &[u64],
    ) -> Self {
        if let Some(lambda) = &spectrum {
            debug_assert!(lambda.len() / 2 + 1 >= block + overlap);
        }
        let sources = seeds
            .iter()
            .map(|&s| SourceState::new(Xoshiro256::seed_from_u64(s), block, overlap))
            .collect();
        BatchStream {
            sd,
            block,
            overlap,
            spectrum: spectrum.map(|l| SharedSpectrum::new(&l)),
            sources,
            scratch: WindowScratch::default(),
            lane_scratch: LaneSynthScratch::default(),
            lane_buf: Vec::new(),
        }
    }

    /// Number of sources in the batch.
    pub fn sources(&self) -> usize {
        self.sources.len()
    }

    /// Admits one more source into the batch, seeded fresh and tagged
    /// with `tenant`, and returns its index. The new source starts at
    /// its very first draw — existing sources are unaffected (their
    /// states are independent), so groups can grow while serving.
    pub fn push_source(&mut self, seed: u64, tenant: u64) -> usize {
        let mut st = SourceState::new(Xoshiro256::seed_from_u64(seed), self.block, self.overlap);
        st.tenant = tenant;
        self.sources.push(st);
        self.sources.len() - 1
    }

    /// The tenant identity of source `source` (0 unless assigned).
    /// Panics if `source` is out of range.
    pub fn tenant(&self, source: usize) -> u64 {
        self.sources[source].tenant
    }

    /// Re-tags source `source` with a tenant identity; the tag travels
    /// through [`export_state`](Self::export_state) /
    /// [`restore_state`](Self::restore_state).
    pub fn set_tenant(&mut self, source: usize, tenant: u64) {
        self.sources[source].tenant = tenant;
    }

    /// Emitted samples per window (per source).
    pub fn block(&self) -> usize {
        self.block
    }

    /// Samples cross-faded at each window seam.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// Circulant transform length per window (`0` on the white-noise
    /// path). This is the batch's *total* spectrum footprint — shared,
    /// not per source.
    pub fn circulant_len(&self) -> usize {
        self.spectrum.as_ref().map_or(0, |sp| sp.m())
    }

    /// Fills `out` with the next `out.len()` samples of source
    /// `source`. Sources advance independently: interleaving calls
    /// across sources in any order yields the same per-source draw
    /// sequences. Panics if `source ≥ self.sources()`.
    pub fn next_block(&mut self, source: usize, out: &mut [f64]) {
        next_block_source(
            self.spectrum.as_ref(),
            self.sd,
            self.block,
            self.overlap,
            &mut self.sources[source],
            &mut self.scratch,
            out,
        );
    }

    /// Fills each `outs[i]` with the next `outs[i].len()` samples of
    /// source `i`. `outs.len()` must equal [`sources`](Self::sources).
    pub fn next_blocks(&mut self, outs: &mut [&mut [f64]]) {
        assert_eq!(outs.len(), self.sources.len(), "one output slice per source");
        for (i, out) in outs.iter_mut().enumerate() {
            self.next_block(i, out);
        }
    }

    /// Lockstep advance of many sources in one call: for every `(source,
    /// row)` pair, fills `buf[row*len .. (row+1)*len]` with the next
    /// `len` samples of that source. Rows must reference distinct
    /// sources; row indices address the caller's slot buffer and need
    /// not be contiguous or ordered.
    ///
    /// This is the fleet hot path. Sources that are due a whole-window
    /// refill (the steady state of a lockstep fleet, where every group
    /// member sits at the same window position) are refilled in cohorts
    /// of [`vbr_fft::lanes`] through the lane-parallel synthesis kernel
    /// — one batched normal draw, one lane FFT and one strided seam
    /// blend per cohort instead of a full scalar pipeline per source.
    /// Sources mid-window, cohort remainders (`< lanes()`), white-noise
    /// groups and `len > block` all take the scalar per-source path.
    /// Both paths are draw-for-draw bit-identical, so callers cannot
    /// observe which one ran (the lane-batching policy of DESIGN.md
    /// §16).
    pub fn advance_rows(&mut self, len: usize, buf: &mut [f64], rows: &[(usize, usize)]) {
        if len == 0 {
            return;
        }
        debug_assert!(
            {
                let mut seen = vec![false; self.sources.len()];
                rows.iter().all(|&(s, _)| !std::mem::replace(&mut seen[s], true))
            },
            "advance_rows requires distinct sources"
        );
        let Some(sp) = self.spectrum.clone() else {
            for &(s, r) in rows {
                self.next_block(s, &mut buf[r * len..(r + 1) * len]);
            }
            return;
        };
        // Partition once: a source is cohort-eligible when this advance
        // is exactly "refill one window, then copy" — the emit loop
        // degenerates to a single refill precisely when the window is
        // exhausted and `len` fits inside a fresh one.
        let mut pending: Vec<(usize, usize)> = Vec::with_capacity(rows.len());
        for &(s, r) in rows {
            let st = &self.sources[s];
            if st.pos >= st.cur.len() && len <= self.block {
                pending.push((s, r));
            } else {
                self.next_block(s, &mut buf[r * len..(r + 1) * len]);
            }
        }
        let k = vbr_fft::lanes();
        let mut done = 0;
        while done + k <= pending.len() {
            self.refill_cohort(&sp, &pending[done..done + k]);
            done += k;
        }
        for &(s, _) in &pending[done..] {
            // Remainder refills scalar — bit-identical by contract.
            crate::stream::refill_source(
                Some(&sp),
                self.sd,
                self.block,
                self.overlap,
                &mut self.sources[s],
                &mut self.scratch,
            );
        }
        for &(s, r) in &pending {
            let st = &mut self.sources[s];
            buf[r * len..(r + 1) * len].copy_from_slice(&st.cur[..len]);
            st.pos = len;
        }
    }

    /// Refills one cohort of sources through the lane-parallel synthesis
    /// kernel: each source draws its own window of normals (own RNG, the
    /// contract order), all windows transform in one lane FFT, and each
    /// source's window/seam buffers are rebuilt with the exact
    /// expressions of the scalar refill — so each source's state ends up
    /// bit-identical to a scalar refill from the same RNG state.
    fn refill_cohort(&mut self, sp: &SharedSpectrum, cohort: &[(usize, usize)]) {
        let _span = obs::span("fgn.stream_refill");
        obs::counter_add(Counter::StreamBlocks, cohort.len() as u64);
        let k = cohort.len();
        let m = sp.m();
        let gauss = self.lane_scratch.gauss_rows(m, k);
        // Each source draws its uniforms from its own generator (so
        // per-source draw accounting matches the scalar path exactly),
        // then one quantile pass covers the whole m×k buffer: the
        // transform is elementwise, so batching across sources is
        // bit-identical to per-source `fill_standard_normal` while
        // amortising the kernel's per-call setup over the cohort.
        for (v, &(s, _)) in cohort.iter().enumerate() {
            self.sources[s].rng.fill_open01(&mut gauss[v * m..(v + 1) * m]);
        }
        vbr_stats::special::norm_quantile_slice(gauss);
        synthesise_real_lanes_into(
            &sp.scales,
            &sp.plan,
            k,
            &mut self.lane_scratch,
            &mut self.lane_buf,
        );
        let (b, l) = (self.block, self.overlap);
        let sd = self.sd;
        let win = &self.lane_buf; // sample t of lane v at win[t*k + v]
        for (v, &(s, _)) in cohort.iter().enumerate() {
            let st = &mut self.sources[s];
            st.pos = 0;
            st.cur.clear();
            st.cur.extend((0..b).map(|t| win[t * k + v] * sd));
            if st.started {
                if l > 0 {
                    obs::counter_add(Counter::SeamCrossFades, 1);
                }
                for i in 0..l {
                    let a = (i + 1) as f64 / (l + 1) as f64;
                    st.cur[i] = (1.0 - a).sqrt() * st.tail[i] + a.sqrt() * st.cur[i];
                }
            }
            st.tail.clear();
            st.tail.extend((b..b + l).map(|t| win[t * k + v] * sd));
            st.started = true;
        }
    }

    /// Exports the dynamic state of one source for checkpointing —
    /// interchangeable with [`crate::FgnStream::export_state`] for the
    /// same-seed independent stream. Panics if `source` is out of
    /// range.
    pub fn export_state(&self, source: usize) -> StreamState {
        self.sources[source].export()
    }

    /// Restores one source from an exported state, with the same full
    /// structural validation as [`crate::CirculantStream`] (nothing is
    /// mutated on error). Panics if `source` is out of range.
    pub fn restore_state(&mut self, source: usize, st: &StreamState) -> Result<(), SnapshotError> {
        self.sources[source].restore(st, self.block, self.overlap, self.spectrum.is_none())
    }
}

/// B independent prefix-exact fGn sources over one shared circulant
/// spectrum; see the [module docs](self) for the memory/bit-identity
/// contract.
#[derive(Debug, Clone)]
pub struct BatchFgn(BatchStream);

impl BatchFgn {
    /// Prefix-exact batch: source `i`'s draws are bit-identical to
    /// `FgnStream::new(hurst, variance, block, seeds[i])`.
    pub fn try_new(
        hurst: f64,
        variance: f64,
        block: usize,
        seeds: &[u64],
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, None, seeds)
    }

    /// Batch with a caller-chosen seam overlap, matching
    /// `FgnStream::with_overlap` source for source.
    pub fn try_with_overlap(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: usize,
        seeds: &[u64],
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, Some(overlap), seeds)
    }

    /// An empty batch group (zero sources) over a validated spectrum —
    /// the serving-layer entry point: admit tenants one at a time with
    /// [`push_source`](Self::push_source) as they arrive. `overlap:
    /// None` selects prefix-exact geometry.
    pub fn try_empty(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: Option<usize>,
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, overlap, &[])
    }

    /// Admits one more source (fresh seed, tenant tag) and returns its
    /// index; see [`BatchStream::push_source`].
    pub fn push_source(&mut self, seed: u64, tenant: u64) -> usize {
        self.0.push_source(seed, tenant)
    }

    /// Tenant identity of source `source`.
    pub fn tenant(&self, source: usize) -> u64 {
        self.0.tenant(source)
    }

    /// Re-tags source `source`; see [`BatchStream::set_tenant`].
    pub fn set_tenant(&mut self, source: usize, tenant: u64) {
        self.0.set_tenant(source, tenant);
    }

    fn build(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: Option<usize>,
        seeds: &[u64],
    ) -> Result<Self, FgnError> {
        if !(hurst > 0.0 && hurst < 1.0) {
            return Err(FgnError::InvalidHurst { hurst, lo: 0.0, hi: 1.0 });
        }
        if !(variance > 0.0 && variance.is_finite()) {
            return Err(FgnError::InvalidVariance { variance });
        }
        check_geometry(block, overlap.unwrap_or(0))?;
        let sd = variance.sqrt();
        if block == 1 {
            return Ok(BatchFgn(BatchStream::from_spectrum(None, sd, 1, 0, seeds)));
        }
        let (m, l) = match overlap {
            None => prefix_exact_geometry(block),
            Some(l) => (next_pow2(2 * (block + l - 1)).max(2), l),
        };
        let lambda = fgn_circulant_spectrum_cached(hurst, m)?;
        Ok(BatchFgn(BatchStream::from_spectrum(Some(lambda), sd, block, l, seeds)))
    }

    /// Number of sources in the batch.
    pub fn sources(&self) -> usize {
        self.0.sources()
    }

    /// Emitted samples per window (per source).
    pub fn block(&self) -> usize {
        self.0.block()
    }

    /// Samples cross-faded at each window seam.
    pub fn overlap(&self) -> usize {
        self.0.overlap()
    }

    /// Shared circulant transform length (`0` on the white-noise path).
    pub fn circulant_len(&self) -> usize {
        self.0.circulant_len()
    }

    /// Next `out.len()` samples of source `source`; see
    /// [`BatchStream::next_block`].
    pub fn next_block(&mut self, source: usize, out: &mut [f64]) {
        self.0.next_block(source, out);
    }

    /// One chunk per source; see [`BatchStream::next_blocks`].
    pub fn next_blocks(&mut self, outs: &mut [&mut [f64]]) {
        self.0.next_blocks(outs);
    }

    /// Lockstep lane-batched advance of many sources; see
    /// [`BatchStream::advance_rows`].
    pub fn advance_rows(&mut self, len: usize, buf: &mut [f64], rows: &[(usize, usize)]) {
        self.0.advance_rows(len, buf, rows);
    }

    /// Per-source checkpoint export; see [`BatchStream::export_state`].
    pub fn export_state(&self, source: usize) -> StreamState {
        self.0.export_state(source)
    }

    /// Per-source checkpoint restore; see
    /// [`BatchStream::restore_state`].
    pub fn restore_state(&mut self, source: usize, st: &StreamState) -> Result<(), SnapshotError> {
        self.0.restore_state(source, st)
    }
}

/// B independent fARIMA(0, d, 0) sources over one shared circulant
/// spectrum — the batch counterpart of [`crate::FarimaStream`], with
/// the same `H ∈ [0.5, 1)` domain and fallible embedding.
#[derive(Debug, Clone)]
pub struct BatchFarima(BatchStream);

impl BatchFarima {
    /// Prefix-exact batch: source `i`'s draws are bit-identical to
    /// `FarimaStream::try_new(hurst, variance, block, seeds[i])`.
    pub fn try_new(
        hurst: f64,
        variance: f64,
        block: usize,
        seeds: &[u64],
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, None, seeds)
    }

    /// Batch with a caller-chosen seam overlap.
    pub fn try_with_overlap(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: usize,
        seeds: &[u64],
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, Some(overlap), seeds)
    }

    /// An empty batch group (zero sources); admit tenants one at a time
    /// with [`push_source`](Self::push_source). See
    /// [`BatchFgn::try_empty`].
    pub fn try_empty(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: Option<usize>,
    ) -> Result<Self, FgnError> {
        Self::build(hurst, variance, block, overlap, &[])
    }

    /// Admits one more source (fresh seed, tenant tag) and returns its
    /// index; see [`BatchStream::push_source`].
    pub fn push_source(&mut self, seed: u64, tenant: u64) -> usize {
        self.0.push_source(seed, tenant)
    }

    /// Tenant identity of source `source`.
    pub fn tenant(&self, source: usize) -> u64 {
        self.0.tenant(source)
    }

    /// Re-tags source `source`; see [`BatchStream::set_tenant`].
    pub fn set_tenant(&mut self, source: usize, tenant: u64) {
        self.0.set_tenant(source, tenant);
    }

    fn build(
        hurst: f64,
        variance: f64,
        block: usize,
        overlap: Option<usize>,
        seeds: &[u64],
    ) -> Result<Self, FgnError> {
        if !(0.5..1.0).contains(&hurst) {
            return Err(FgnError::InvalidHurst { hurst, lo: 0.5, hi: 1.0 });
        }
        if !(variance > 0.0 && variance.is_finite()) {
            return Err(FgnError::InvalidVariance { variance });
        }
        check_geometry(block, overlap.unwrap_or(0))?;
        let d = crate::acvf::hurst_to_d(hurst);
        let sd = variance.sqrt();
        if block == 1 {
            return Ok(BatchFarima(BatchStream::from_spectrum(None, sd, 1, 0, seeds)));
        }
        let (m, l) = match overlap {
            None => prefix_exact_geometry(block),
            Some(l) => (next_pow2(2 * (block + l - 1)).max(2), l),
        };
        let lambda = farima_circulant_spectrum_cached(d, m)?;
        Ok(BatchFarima(BatchStream::from_spectrum(Some(lambda), sd, block, l, seeds)))
    }

    /// Number of sources in the batch.
    pub fn sources(&self) -> usize {
        self.0.sources()
    }

    /// Emitted samples per window (per source).
    pub fn block(&self) -> usize {
        self.0.block()
    }

    /// Samples cross-faded at each window seam.
    pub fn overlap(&self) -> usize {
        self.0.overlap()
    }

    /// Shared circulant transform length (`0` on the white-noise path).
    pub fn circulant_len(&self) -> usize {
        self.0.circulant_len()
    }

    /// Next `out.len()` samples of source `source`.
    pub fn next_block(&mut self, source: usize, out: &mut [f64]) {
        self.0.next_block(source, out);
    }

    /// One chunk per source; see [`BatchStream::next_blocks`].
    pub fn next_blocks(&mut self, outs: &mut [&mut [f64]]) {
        self.0.next_blocks(outs);
    }

    /// Lockstep lane-batched advance of many sources; see
    /// [`BatchStream::advance_rows`].
    pub fn advance_rows(&mut self, len: usize, buf: &mut [f64], rows: &[(usize, usize)]) {
        self.0.advance_rows(len, buf, rows);
    }

    /// Per-source checkpoint export.
    pub fn export_state(&self, source: usize) -> StreamState {
        self.0.export_state(source)
    }

    /// Per-source checkpoint restore.
    pub fn restore_state(&mut self, source: usize, st: &StreamState) -> Result<(), SnapshotError> {
        self.0.restore_state(source, st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{FarimaStream, FgnStream};

    #[test]
    fn batch_fgn_matches_independent_streams() {
        let seeds = [11u64, 22, 33, 44];
        let mut batch = BatchFgn::try_new(0.8, 2.5, 100, &seeds).unwrap();
        assert_eq!(batch.sources(), 4);
        for (i, &s) in seeds.iter().enumerate() {
            let mut solo = FgnStream::new(0.8, 2.5, 100, s);
            let mut a = vec![0.0; 350];
            let mut b = vec![0.0; 350];
            batch.next_block(i, &mut a);
            solo.next_block(&mut b);
            assert_eq!(a, b, "source {i}");
        }
    }

    #[test]
    fn interleaving_sources_does_not_couple_them() {
        let seeds = [5u64, 6];
        let mut batch = BatchFgn::try_new(0.7, 1.0, 64, &seeds).unwrap();
        // Drain source 0 far ahead, then source 1, then source 0 again.
        let mut a = vec![0.0; 500];
        let mut b = vec![0.0; 130];
        let mut a2 = vec![0.0; 70];
        batch.next_block(0, &mut a);
        batch.next_block(1, &mut b);
        batch.next_block(0, &mut a2);

        let mut solo0 = FgnStream::new(0.7, 1.0, 64, 5);
        let mut solo1 = FgnStream::new(0.7, 1.0, 64, 6);
        let mut e = vec![0.0; 570];
        let mut f = vec![0.0; 130];
        solo0.next_block(&mut e);
        solo1.next_block(&mut f);
        assert_eq!(a, e[..500]);
        assert_eq!(a2, e[500..]);
        assert_eq!(b, f);
    }

    #[test]
    fn batch_overlap_matches_with_overlap_streams() {
        let seeds = [7u64, 8];
        let mut batch = BatchFgn::try_with_overlap(0.85, 3.0, 50, 20, &seeds).unwrap();
        for (i, &s) in seeds.iter().enumerate() {
            let mut solo = FgnStream::with_overlap(0.85, 3.0, 50, 20, s);
            let mut a = vec![0.0; 160];
            let mut b = vec![0.0; 160];
            batch.next_block(i, &mut a);
            solo.next_block(&mut b);
            assert_eq!(a, b, "source {i}");
        }
    }

    #[test]
    fn batch_farima_matches_independent_streams() {
        let seeds = [1u64, 2, 3];
        let mut batch = BatchFarima::try_new(0.75, 1.5, 80, &seeds).unwrap();
        for (i, &s) in seeds.iter().enumerate() {
            let mut solo = FarimaStream::try_new(0.75, 1.5, 80, s).unwrap();
            let mut a = vec![0.0; 200];
            let mut b = vec![0.0; 200];
            batch.next_block(i, &mut a);
            solo.next_block(&mut b);
            assert_eq!(a, b, "source {i}");
        }
    }

    #[test]
    fn white_noise_path_block_one() {
        let seeds = [42u64, 43];
        let mut batch = BatchFgn::try_new(0.8, 4.0, 1, &seeds).unwrap();
        assert_eq!(batch.circulant_len(), 0);
        for (i, &s) in seeds.iter().enumerate() {
            let mut solo = FgnStream::new(0.8, 4.0, 1, s);
            let mut a = vec![0.0; 10];
            let mut b = vec![0.0; 10];
            batch.next_block(i, &mut a);
            solo.next_block(&mut b);
            assert_eq!(a, b, "source {i}");
        }
    }

    #[test]
    fn export_restore_round_trips_per_source() {
        let seeds = [9u64, 10];
        let mut batch = BatchFgn::try_new(0.8, 1.0, 64, &seeds).unwrap();
        let mut warm = vec![0.0; 100];
        batch.next_block(0, &mut warm);
        batch.next_block(1, &mut warm);
        let st0 = batch.export_state(0);
        let mut expect = vec![0.0; 150];
        batch.next_block(0, &mut expect);
        // Restoring into a *fresh* batch must resume bit-identically.
        let mut fresh = BatchFgn::try_new(0.8, 1.0, 64, &seeds).unwrap();
        fresh.restore_state(0, &st0).unwrap();
        let mut got = vec![0.0; 150];
        fresh.next_block(0, &mut got);
        assert_eq!(got, expect);
    }

    #[test]
    fn tenant_identity_round_trips_through_state() {
        // Shard migration: a source pushed with a tenant tag, exported,
        // and restored into a *different* group (different position)
        // must keep both its identity and its draw sequence.
        let mut batch = BatchFgn::try_empty(0.8, 1.0, 64, None).unwrap();
        let i = batch.push_source(77, 0xBEEF);
        assert_eq!(batch.tenant(i), 0xBEEF);
        let mut warm = vec![0.0; 90];
        batch.next_block(i, &mut warm);
        let st = batch.export_state(i);
        assert_eq!(st.tenant, 0xBEEF);
        let mut expect = vec![0.0; 120];
        batch.next_block(i, &mut expect);

        let mut other = BatchFgn::try_empty(0.8, 1.0, 64, None).unwrap();
        other.push_source(1, 1); // occupy index 0 with a stranger
        let j = other.push_source(0, 0); // placeholder seed; state overwrites
        other.restore_state(j, &st).unwrap();
        assert_eq!(other.tenant(j), 0xBEEF, "identity must survive migration");
        let mut got = vec![0.0; 120];
        other.next_block(j, &mut got);
        assert_eq!(got, expect, "draws must survive migration");
    }

    #[test]
    fn pushed_source_matches_constructor_source() {
        let mut ctor = BatchFgn::try_new(0.7, 1.0, 48, &[123]).unwrap();
        let mut grown = BatchFgn::try_empty(0.7, 1.0, 48, None).unwrap();
        grown.push_source(123, 9);
        let mut a = vec![0.0; 200];
        let mut b = vec![0.0; 200];
        ctor.next_block(0, &mut a);
        grown.next_block(0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_bad_state() {
        let mut batch = BatchFgn::try_new(0.8, 1.0, 64, &[1]).unwrap();
        let mut warm = vec![0.0; 10];
        batch.next_block(0, &mut warm);
        let mut st = batch.export_state(0);
        st.cur.push(0.0); // wrong window length
        assert!(batch.restore_state(0, &st).is_err());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(BatchFgn::try_new(1.5, 1.0, 64, &[1]).is_err());
        assert!(BatchFgn::try_new(0.8, -1.0, 64, &[1]).is_err());
        assert!(BatchFgn::try_with_overlap(0.8, 1.0, 4, 9, &[1]).is_err());
        assert!(BatchFarima::try_new(0.3, 1.0, 64, &[1]).is_err());
    }
}
