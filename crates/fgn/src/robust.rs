//! Robust LRD generation: Davies–Harte with an exact Hosking fallback.
//!
//! Davies–Harte is `O(n log n)` but requires the circulant embedding of
//! the target autocovariance to be positive semi-definite. For true fGn
//! that holds by theorem; for perturbed or empirically-derived
//! covariances (and, in principle, for pathological round-off) it can
//! fail. [`RobustFgn`] detects the typed
//! [`FgnError::NonPsdEmbedding`] failure and degrades gracefully to
//! Hosking's exact `O(n²)` Durbin–Levinson recursion, recording which
//! engine produced the path and why the fallback fired.

use crate::davies_harte::DaviesHarte;
use crate::error::FgnError;
use crate::hosking::Hosking;
use vbr_stats::obs::{self, Counter};
use vbr_stats::rng::Xoshiro256;

/// Which generator produced a sample path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FgnEngine {
    /// Davies–Harte circulant embedding (`O(n log n)`).
    DaviesHarte,
    /// Hosking Durbin–Levinson fallback (`O(n²)`).
    HoskingFallback,
}

/// A generated path plus provenance.
#[derive(Debug, Clone)]
pub struct RobustFgnResult {
    /// The sample path.
    pub series: Vec<f64>,
    /// Which engine produced it.
    pub engine: FgnEngine,
    /// The Davies–Harte failure that triggered the fallback, if any.
    pub fallback_reason: Option<FgnError>,
}

/// An LRD generator that prefers Davies–Harte and falls back to Hosking.
#[derive(Debug, Clone)]
pub struct RobustFgn {
    hurst: f64,
    variance: f64,
}

impl RobustFgn {
    /// Creates the generator; `H ∈ [0.5, 1)` (so the Hosking fallback is
    /// always available) and `variance > 0`.
    pub fn try_new(hurst: f64, variance: f64) -> Result<Self, FgnError> {
        if !(0.5..1.0).contains(&hurst) {
            return Err(FgnError::InvalidHurst { hurst, lo: 0.5, hi: 1.0 });
        }
        if !(variance > 0.0 && variance.is_finite()) {
            return Err(FgnError::InvalidVariance { variance });
        }
        Ok(RobustFgn { hurst, variance })
    }

    /// The Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.hurst
    }

    /// Generates `n` points, falling back to Hosking if the circulant
    /// spectrum is not PSD.
    pub fn generate(&self, n: usize, seed: u64) -> RobustFgnResult {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        match DaviesHarte::new(self.hurst, self.variance).try_generate_with(n, &mut rng) {
            Ok(series) => RobustFgnResult {
                series,
                engine: FgnEngine::DaviesHarte,
                fallback_reason: None,
            },
            Err(reason) => {
                obs::counter_add(Counter::HoskingFallback, 1);
                obs::event_with("fgn.hosking_fallback", || format!("n={n}, reason: {reason}"));
                RobustFgnResult {
                    series: Hosking::new(self.hurst, self.variance).generate(n, seed),
                    engine: FgnEngine::HoskingFallback,
                    fallback_reason: Some(reason),
                }
            }
        }
    }

    /// Generates `n` points with the arbitrary stationary autocovariance
    /// `gamma[0..=half]` (unit overall scale). Davies–Harte is attempted
    /// first; when the embedding is not PSD — the realistic trigger, e.g.
    /// a truncated or empirically-estimated covariance — the generator
    /// degrades to the exact parametric fGn path with this generator's
    /// own `H` and variance, reporting why.
    pub fn generate_from_acvf(&self, gamma: &[f64], n: usize, seed: u64) -> RobustFgnResult {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        match DaviesHarte::try_generate_from_acvf(gamma, n, &mut rng) {
            Ok(series) => RobustFgnResult {
                series,
                engine: FgnEngine::DaviesHarte,
                fallback_reason: None,
            },
            Err(reason) => {
                obs::counter_add(Counter::HoskingFallback, 1);
                obs::event_with("fgn.hosking_fallback", || format!("n={n}, reason: {reason}"));
                RobustFgnResult {
                    series: Hosking::new(self.hurst, self.variance).generate(n, seed),
                    engine: FgnEngine::HoskingFallback,
                    fallback_reason: Some(reason),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_use_davies_harte() {
        let g = RobustFgn::try_new(0.8, 1.0).unwrap();
        let r = g.generate(4_096, 1);
        assert_eq!(r.engine, FgnEngine::DaviesHarte);
        assert!(r.fallback_reason.is_none());
        assert_eq!(r.series.len(), 4_096);
        assert!(r.series.iter().all(|v| v.is_finite()));
        // Identical to the raw Davies-Harte path: the robust wrapper must
        // not perturb the healthy case.
        assert_eq!(r.series, DaviesHarte::new(0.8, 1.0).generate(4_096, 1));
    }

    #[test]
    fn invalid_params_rejected_with_typed_errors() {
        assert!(matches!(
            RobustFgn::try_new(0.4, 1.0),
            Err(FgnError::InvalidHurst { .. })
        ));
        assert!(matches!(
            RobustFgn::try_new(f64::NAN, 1.0),
            Err(FgnError::InvalidHurst { .. })
        ));
        assert!(matches!(
            RobustFgn::try_new(0.8, 0.0),
            Err(FgnError::InvalidVariance { .. })
        ));
        assert!(matches!(
            RobustFgn::try_new(0.8, f64::INFINITY),
            Err(FgnError::InvalidVariance { .. })
        ));
    }

    #[test]
    fn non_psd_embedding_detected_and_fallback_fires() {
        // γ = [1, 0.8, 0, …]: the circulant eigenvalues are
        // 1 + 1.6 cos(2πj/m), dipping to −0.6 — decisively non-PSD.
        let mut gamma = vec![0.0; 129];
        gamma[0] = 1.0;
        gamma[1] = 0.8;

        let mut rng = Xoshiro256::seed_from_u64(5);
        match DaviesHarte::try_generate_from_acvf(&gamma, 100, &mut rng) {
            Err(FgnError::NonPsdEmbedding { min_eigenvalue, .. }) => {
                assert!(min_eigenvalue < -0.5, "min eigenvalue {min_eigenvalue}")
            }
            other => panic!("expected NonPsdEmbedding, got {other:?}"),
        }

        let g = RobustFgn::try_new(0.8, 1.0).unwrap();
        let r = g.generate_from_acvf(&gamma, 100, 5);
        assert_eq!(r.engine, FgnEngine::HoskingFallback);
        assert!(matches!(
            r.fallback_reason,
            Some(FgnError::NonPsdEmbedding { .. })
        ));
        assert_eq!(r.series.len(), 100);
        assert!(r.series.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn valid_custom_acvf_is_embeddable() {
        // MA(1) with ρ₁ = 0.4 < ½: eigenvalues 1 + 0.8 cos θ > 0.
        let mut gamma = vec![0.0; 129];
        gamma[0] = 1.0;
        gamma[1] = 0.4;
        let g = RobustFgn::try_new(0.8, 1.0).unwrap();
        let r = g.generate_from_acvf(&gamma, 128, 7);
        assert_eq!(r.engine, FgnEngine::DaviesHarte);
        assert_eq!(r.series.len(), 128);
    }
}
