//! Davies–Harte circulant-embedding generator for exact fractional
//! Gaussian noise in `O(n log n)`.
//!
//! This is the modern remedy for the `O(n²)` cost of Hosking's algorithm
//! that the paper calls out (10 hours for the 171 000-point realisation in
//! 1994): embed the fGn covariance in a circulant matrix, diagonalise it
//! with one FFT, and synthesise a Gaussian vector with exactly the target
//! covariance.

use crate::error::FgnError;
use vbr_fft::{fft_pow2_in_place, next_pow2, real_plan_for, Complex, Direction, RealFftPlan};
use vbr_stats::rng::Xoshiro256;

/// Relative tolerance below which a negative circulant eigenvalue is
/// attributed to FFT round-off and clamped to zero; anything more
/// negative means the embedding genuinely is not PSD.
const PSD_REL_TOL: f64 = 1e-9;

/// Eigenvalues of the circulant embedding of the autocovariances
/// `gamma[0..=half]` (first row `γ_0 … γ_half γ_{half−1} … γ_1`).
///
/// `gamma.len() − 1` must be half of a power of two (the radix-2 FFT
/// constraint); eigenvalues within round-off of zero are clamped, and a
/// genuinely negative spectrum is reported as [`FgnError::NonPsdEmbedding`].
pub fn circulant_spectrum(gamma: &[f64]) -> Result<Vec<f64>, FgnError> {
    let half = gamma.len().saturating_sub(1);
    let m = 2 * half;
    if half == 0 || m != next_pow2(m) {
        return Err(vbr_stats::error::NumericError::OutOfRange {
            what: "circulant acvf length (must be 2^k + 1)",
            value: gamma.len() as f64,
            lo: 2.0,
            hi: f64::INFINITY,
        }
        .into());
    }

    let mut row = Vec::with_capacity(m);
    row.extend_from_slice(gamma);
    for k in (1..half).rev() {
        row.push(gamma[k]);
    }
    debug_assert_eq!(row.len(), m);

    let mut eig: Vec<Complex> = row.into_iter().map(Complex::from_re).collect();
    fft_pow2_in_place(&mut eig, Direction::Forward);

    let max_eig = eig.iter().map(|z| z.re).fold(0.0f64, f64::max);
    let tol = PSD_REL_TOL * max_eig.max(f64::MIN_POSITIVE);
    let min_eig = eig.iter().map(|z| z.re).fold(f64::INFINITY, f64::min);
    if min_eig < -tol {
        return Err(FgnError::NonPsdEmbedding { min_eigenvalue: min_eig, n: half + 1 });
    }
    Ok(eig.into_iter().map(|z| z.re.max(0.0)).collect())
}

/// Exact fGn generator via circulant embedding.
#[derive(Debug, Clone)]
pub struct DaviesHarte {
    hurst: f64,
    variance: f64,
}

impl DaviesHarte {
    /// Creates a generator with Hurst parameter `H ∈ (0, 1)` and marginal
    /// variance `v₀`.
    pub fn new(hurst: f64, variance: f64) -> Self {
        assert!(
            hurst > 0.0 && hurst < 1.0,
            "Davies-Harte requires H in (0,1), got {hurst}"
        );
        assert!(variance > 0.0, "variance must be positive, got {variance}");
        DaviesHarte { hurst, variance }
    }

    /// Fallible [`new`](Self::new): rejects `H ∉ (0, 1)`, non-positive
    /// variance and NaN/infinite values with typed errors.
    pub fn try_new(hurst: f64, variance: f64) -> Result<Self, FgnError> {
        if !(hurst > 0.0 && hurst < 1.0) {
            return Err(FgnError::InvalidHurst { hurst, lo: 0.0, hi: 1.0 });
        }
        if !(variance > 0.0 && variance.is_finite()) {
            return Err(FgnError::InvalidVariance { variance });
        }
        Ok(DaviesHarte { hurst, variance })
    }

    /// The Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.hurst
    }

    /// Generates `n` points of zero-mean Gaussian fGn.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        self.generate_with(n, &mut rng)
    }

    /// Like [`generate`](Self::generate) with a caller-owned RNG.
    pub fn generate_with(&self, n: usize, rng: &mut Xoshiro256) -> Vec<f64> {
        // The fGn embedding is provably nonnegative-definite, so the only
        // possible failure is FFT round-off beyond the clamp tolerance.
        self.try_generate_with(n, rng)
            .unwrap_or_else(|e| panic!("Davies-Harte generation failed: {e}"))
    }

    /// Fallible [`generate_with`](Self::generate_with): reports a
    /// genuinely negative circulant spectrum as
    /// [`FgnError::NonPsdEmbedding`] instead of silently clamping it
    /// (round-off-sized negatives are still clamped, so valid inputs
    /// produce bit-identical output to the panicking path).
    pub fn try_generate_with(
        &self,
        n: usize,
        rng: &mut Xoshiro256,
    ) -> Result<Vec<f64>, FgnError> {
        let _span = vbr_stats::obs::span("fgn.davies_harte");
        if n == 0 {
            return Ok(Vec::new());
        }
        if n == 1 {
            return Ok(vec![rng.standard_normal() * self.variance.sqrt()]);
        }

        // Embed in a circulant of even size m ≥ 2(n−1), power of two for
        // the radix-2 kernel. The spectrum (ACVF build + eigenvalue FFT)
        // depends only on (H, m), so repeat generations hit the memo.
        let m = next_pow2(2 * (n - 1)).max(2);
        let lambda = crate::cache::fgn_circulant_spectrum_cached(self.hurst, m)?;
        Ok(synthesise_from_spectrum(&lambda, n, self.variance.sqrt(), rng))
    }

    /// Generates `n` points of a zero-mean Gaussian series with the
    /// arbitrary stationary autocovariance `gamma[0..=half]` (lag 0 first),
    /// where `gamma.len() − 1` must be half of a power of two and
    /// `n ≤ gamma.len()`. This is the raw circulant-embedding engine: it
    /// fails with [`FgnError::NonPsdEmbedding`] when the requested
    /// covariance cannot be embedded — the failure mode the robust
    /// generator falls back from.
    pub fn try_generate_from_acvf(
        gamma: &[f64],
        n: usize,
        rng: &mut Xoshiro256,
    ) -> Result<Vec<f64>, FgnError> {
        let _span = vbr_stats::obs::span("fgn.davies_harte");
        if n > gamma.len() {
            return Err(vbr_stats::error::NumericError::OutOfRange {
                what: "requested length (exceeds provided acvf lags)",
                value: n as f64,
                lo: 0.0,
                hi: gamma.len() as f64,
            }
            .into());
        }
        Ok(synthesise_from_spectrum(&circulant_spectrum(gamma)?, n, 1.0, rng))
    }
}

/// Draws a Gaussian vector whose circulant covariance has eigenvalues
/// `lambda`, returning the first `n` points scaled by `sd`.
fn synthesise_from_spectrum(
    lambda: &[f64],
    n: usize,
    sd: f64,
    rng: &mut Xoshiro256,
) -> Vec<f64> {
    let mut scratch = SynthScratch::new();
    let mut out = Vec::new();
    synthesise_real_into(lambda, rng, &mut scratch, &mut out);
    out.truncate(n);
    for x in &mut out {
        *x *= sd;
    }
    out
}

/// Precomputed per-bin amplitudes of the circulant half-spectrum draw:
/// `s0 = √(λ₀/m)`, `sh = √(λ_{m/2}/m)` and `sk[k−1] = √(λ_k/2m)` for the
/// conjugate pairs `k = 1..m/2`.
///
/// These are exactly the expressions the synthesis core used to evaluate
/// per window; hoisting them to construction time removes `m/2 + 1`
/// divisions and square roots from every refill without changing a bit
/// of output (the stored values are the same f64s the inline expressions
/// produced).
#[derive(Debug, Clone)]
pub(crate) struct SpectrumScales {
    m: usize,
    s0: f64,
    sh: f64,
    sk: Vec<f64>,
}

impl SpectrumScales {
    /// Builds the amplitude table for eigenvalues `lambda` (length `m`).
    pub(crate) fn new(lambda: &[f64]) -> Self {
        let m = lambda.len();
        let half = m / 2;
        let mf = m as f64;
        SpectrumScales {
            m,
            s0: (lambda[0] / mf).sqrt(),
            sh: (lambda[half] / mf).sqrt(),
            sk: (1..half).map(|k| (lambda[k] / (2.0 * mf)).sqrt()).collect(),
        }
    }

    /// Circulant length `m` the table was built for.
    pub(crate) fn m(&self) -> usize {
        self.m
    }
}

/// Reusable workspace of the real synthesis core: the Hermitian
/// half-spectrum (`m/2 + 1` complex bins) and the half-length complex
/// FFT scratch. Streaming and batch callers keep one of these per
/// stream (or one per *batch* — the whole point of the shared-scratch
/// batch engine), so steady-state generation allocates nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct SynthScratch {
    /// Half-spectrum `W[0..=m/2]` of the circulant draw.
    half: Vec<Complex>,
    /// Length-`m/2` workspace of [`vbr_fft::RealFftPlan`].
    fft: Vec<Complex>,
    /// Batch normal-draw scratch (`m` values per window).
    gauss: Vec<f64>,
}

impl SynthScratch {
    pub(crate) fn new() -> Self {
        SynthScratch::default()
    }
}

/// Zero-allocation synthesis core: fills `out` (resized in place to the
/// circulant length `m = lambda.len()`) with one real Gaussian
/// realisation of the circulant process, at unit scale (the caller
/// applies `sd`). `out[t]` for `t < m/2 + 1` is an exact sample of the
/// target stationary process.
///
/// RNG draw order (DC, Nyquist, then conjugate pairs `k = 1..m/2`) is a
/// compatibility contract: the block-streaming generator relies on it to
/// stay bit-identical to the batch path on shared-seed prefixes. The
/// `m` normals are drawn through the batch quantile kernel
/// ([`Xoshiro256::fill_standard_normal`]) into the reused `gauss`
/// scratch — one u64 per variate in the contract order, so the sequence
/// is bit-identical to per-sample draws.
///
/// Only the half-spectrum `W[0..=m/2]` is ever materialised — the upper
/// half is its conjugate mirror by construction — and the forward FFT of
/// the Hermitian whole runs as **one** `m/2`-point complex transform
/// through [`vbr_fft::RealFftPlan::synthesize_hermitian`]. That halves
/// both the transform work and the complex workspace of the previous
/// full-`m` complex path on the hottest loop of the pipeline.
pub(crate) fn synthesise_real_into(
    lambda: &[f64],
    rng: &mut Xoshiro256,
    scratch: &mut SynthScratch,
    out: &mut Vec<f64>,
) {
    let m = lambda.len();
    let scales = SpectrumScales::new(lambda);
    synthesise_real_with(&scales, &real_plan_for(m), rng, scratch, out);
}

/// Hot-loop variant of [`synthesise_real_into`]: the caller holds the
/// amplitude table and the FFT plan across windows, so a refill does no
/// plan-cache lookup (a mutex acquisition), no eigenvalue arithmetic and
/// no allocation. Output is bit-identical to [`synthesise_real_into`].
pub(crate) fn synthesise_real_with(
    scales: &SpectrumScales,
    plan: &RealFftPlan,
    rng: &mut Xoshiro256,
    scratch: &mut SynthScratch,
    out: &mut Vec<f64>,
) {
    let m = scales.m;
    let half = m / 2;
    // Synthesise W with E|W_k|² = λ_k/m and (implicit) Hermitian
    // symmetry so that the FFT comes out real with the target covariance.
    // Scratch is resized only when the geometry changes; in steady state
    // every element is overwritten below, so no clear/re-zero pass runs.
    if scratch.half.len() != half + 1 {
        scratch.half.clear();
        scratch.half.resize(half + 1, Complex::ZERO);
    }
    if scratch.gauss.len() != m {
        scratch.gauss.clear();
        scratch.gauss.resize(m, 0.0);
    }
    rng.fill_standard_normal(&mut scratch.gauss);
    let gauss = &scratch.gauss;
    scratch.half[0] = Complex::from_re(scales.s0 * gauss[0]);
    scratch.half[half] = Complex::from_re(scales.sh * gauss[1]);
    for k in 1..half {
        let scale = scales.sk[k - 1];
        scratch.half[k] = Complex::new(scale * gauss[2 * k], scale * gauss[2 * k + 1]);
    }
    plan.synthesize_hermitian(&scratch.half, out, &mut scratch.fft);
}

/// Reusable workspace of the lane-parallel synthesis core: the
/// lane-interleaved half-spectrum and FFT scratch shared by all `l`
/// windows of a batch, plus the row-major normal-draw buffer.
#[derive(Debug, Clone, Default)]
pub(crate) struct LaneSynthScratch {
    /// Lane-interleaved half-spectra: bin `k` of window `v` at `[k*l + v]`.
    half: Vec<Complex>,
    /// Lane-interleaved workspace of the half-length complex FFT.
    fft: Vec<Complex>,
    /// Row-major normal draws: window `v`'s `m` contract-order draws at
    /// `[v*m .. (v+1)*m]`.
    pub(crate) gauss: Vec<f64>,
}

impl LaneSynthScratch {
    /// Resizes the gauss buffer for `l` rows of `m` draws each and
    /// returns it for the caller to fill (one RNG per row for batch
    /// cohorts, one RNG sequentially for solo prefetch).
    pub(crate) fn gauss_rows(&mut self, m: usize, l: usize) -> &mut [f64] {
        if self.gauss.len() != m * l {
            self.gauss.clear();
            self.gauss.resize(m * l, 0.0);
        }
        &mut self.gauss
    }
}

/// Lane-parallel synthesis core: `l` circulant windows synthesised at
/// once, one per lane, from `l` rows of pre-drawn normals
/// (`scratch.gauss[v*m .. (v+1)*m]` holds window `v`'s draws in the
/// contract order). `out` is lane-interleaved: sample `t` of window `v`
/// at `out[t*l + v]`.
///
/// Per lane this evaluates exactly the expressions of
/// [`synthesise_real_with`] — the same precomputed amplitudes against
/// the same draws, then the lane FFT whose per-lane bit-identity is
/// proven in `vbr-fft` — so window `v`'s samples are bit-identical to a
/// scalar synthesis from the same draws. That equivalence is what lets
/// the streaming and fleet layers batch `l = lanes()` windows under the
/// bit-invisible-dispatch policy.
pub(crate) fn synthesise_real_lanes_into(
    scales: &SpectrumScales,
    plan: &RealFftPlan,
    l: usize,
    scratch: &mut LaneSynthScratch,
    out: &mut Vec<f64>,
) {
    let m = scales.m;
    let half = m / 2;
    debug_assert_eq!(scratch.gauss.len(), m * l);
    if scratch.half.len() != (half + 1) * l {
        scratch.half.clear();
        scratch.half.resize((half + 1) * l, Complex::ZERO);
    }
    for v in 0..l {
        let row = &scratch.gauss[v * m..(v + 1) * m];
        scratch.half[v] = Complex::from_re(scales.s0 * row[0]);
        scratch.half[half * l + v] = Complex::from_re(scales.sh * row[1]);
    }
    for k in 1..half {
        let scale = scales.sk[k - 1];
        for v in 0..l {
            let row = &scratch.gauss[v * m..(v + 1) * m];
            scratch.half[k * l + v] =
                Complex::new(scale * row[2 * k], scale * row[2 * k + 1]);
        }
    }
    plan.synthesize_hermitian_lanes(&scratch.half, out, &mut scratch.fft, l);
}

/// Fractional Brownian motion path: the cumulative sum of fGn,
/// `B_H(k) = Σ_{i≤k} X_i` — the storage/workload process of the
/// Norros fluid model (`vbr-qsim::analytic`).
pub fn fbm_path(fgn: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    fgn.iter()
        .map(|&x| {
            acc += x;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acvf::fgn_acvf;
    use vbr_stats::acf::autocorrelation;

    #[test]
    fn deterministic_given_seed() {
        let g = DaviesHarte::new(0.8, 1.0);
        assert_eq!(g.generate(500, 42), g.generate(500, 42));
        assert_ne!(g.generate(500, 42), g.generate(500, 43));
    }

    #[test]
    fn h_half_is_white_noise() {
        let g = DaviesHarte::new(0.5, 1.0);
        let x = g.generate(40_000, 1);
        let r = autocorrelation(&x, 5);
        for &v in &r[1..] {
            assert!(v.abs() < 0.02, "white-noise ACF should vanish, got {v}");
        }
    }

    #[test]
    fn sample_acf_matches_fgn_theory() {
        let h = 0.8;
        let g = DaviesHarte::new(h, 1.0);
        let x = g.generate(65_536, 2);
        let r = autocorrelation(&x, 20);
        let want = fgn_acvf(h, 20);
        for k in 1..=20 {
            assert!(
                (r[k] - want[k]).abs() < 0.05,
                "lag {k}: sample {} vs theory {}",
                r[k],
                want[k]
            );
        }
    }

    #[test]
    fn mean_zero_and_target_variance() {
        let g = DaviesHarte::new(0.75, 9.0);
        let x = g.generate(65_536, 3);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var - 9.0).abs() < 1.2, "var {var}");
    }

    #[test]
    fn antipersistent_case_works_too() {
        let g = DaviesHarte::new(0.3, 1.0);
        let x = g.generate(30_000, 4);
        let r = autocorrelation(&x, 1);
        // fGn with H = 0.3 has γ_1 = 2^{2H−1} − 1 ≈ −0.2422.
        assert!((r[1] + 0.2422).abs() < 0.03, "r(1) = {}", r[1]);
    }

    #[test]
    fn long_generation_is_fast_and_correct_length() {
        let g = DaviesHarte::new(0.8, 1.0);
        let x = g.generate(171_000, 5);
        assert_eq!(x.len(), 171_000);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fbm_path_is_cumsum_and_self_similar() {
        let h = 0.8;
        let fgn = DaviesHarte::new(h, 1.0).generate(65_536, 21);
        let path = fbm_path(&fgn);
        assert_eq!(path.len(), fgn.len());
        assert!((path[0] - fgn[0]).abs() < 1e-12);
        assert!((path[9] - fgn[..10].iter().sum::<f64>()).abs() < 1e-9);
        // Self-similarity: Var[B(2t)] / Var[B(t)] = 2^{2H} across fresh
        // realisations — check via increments over disjoint blocks.
        let var_at = |span: usize| {
            let incs: Vec<f64> = path
                .chunks_exact(span)
                .map(|c| c.last().unwrap() - c.first().unwrap())
                .collect();
            let m = incs.iter().sum::<f64>() / incs.len() as f64;
            incs.iter().map(|v| (v - m).powi(2)).sum::<f64>() / incs.len() as f64
        };
        let ratio = var_at(2_048) / var_at(1_024);
        let want = 2f64.powf(2.0 * h);
        assert!(
            (ratio / want - 1.0).abs() < 0.45,
            "variance ratio {ratio} vs 2^2H = {want}"
        );
    }

    #[test]
    fn small_n_edge_cases() {
        let g = DaviesHarte::new(0.8, 1.0);
        assert!(g.generate(0, 1).is_empty());
        assert_eq!(g.generate(1, 1).len(), 1);
        assert_eq!(g.generate(2, 1).len(), 2);
        assert_eq!(g.generate(3, 1).len(), 3);
    }
}
