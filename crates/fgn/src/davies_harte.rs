//! Davies–Harte circulant-embedding generator for exact fractional
//! Gaussian noise in `O(n log n)`.
//!
//! This is the modern remedy for the `O(n²)` cost of Hosking's algorithm
//! that the paper calls out (10 hours for the 171 000-point realisation in
//! 1994): embed the fGn covariance in a circulant matrix, diagonalise it
//! with one FFT, and synthesise a Gaussian vector with exactly the target
//! covariance.

use crate::acvf::fgn_acvf;
use vbr_fft::{fft_pow2_in_place, next_pow2, Complex, Direction};
use vbr_stats::rng::Xoshiro256;

/// Exact fGn generator via circulant embedding.
#[derive(Debug, Clone)]
pub struct DaviesHarte {
    hurst: f64,
    variance: f64,
}

impl DaviesHarte {
    /// Creates a generator with Hurst parameter `H ∈ (0, 1)` and marginal
    /// variance `v₀`.
    pub fn new(hurst: f64, variance: f64) -> Self {
        assert!(
            hurst > 0.0 && hurst < 1.0,
            "Davies-Harte requires H in (0,1), got {hurst}"
        );
        assert!(variance > 0.0, "variance must be positive, got {variance}");
        DaviesHarte { hurst, variance }
    }

    /// The Hurst parameter.
    pub fn hurst(&self) -> f64 {
        self.hurst
    }

    /// Generates `n` points of zero-mean Gaussian fGn.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        self.generate_with(n, &mut rng)
    }

    /// Like [`generate`](Self::generate) with a caller-owned RNG.
    pub fn generate_with(&self, n: usize, rng: &mut Xoshiro256) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![rng.standard_normal() * self.variance.sqrt()];
        }

        // Embed in a circulant of even size m ≥ 2(n−1), power of two for
        // the radix-2 kernel.
        let m = next_pow2(2 * (n - 1)).max(2);
        let half = m / 2;
        let gamma = fgn_acvf(self.hurst, half);

        // First row of the circulant: γ_0, γ_1, …, γ_{m/2}, γ_{m/2−1}, …, γ_1.
        let mut row = Vec::with_capacity(m);
        row.extend_from_slice(&gamma);
        for k in (1..half).rev() {
            row.push(gamma[k]);
        }
        debug_assert_eq!(row.len(), m);

        // Eigenvalues of the circulant = FFT of the first row.
        let mut eig: Vec<Complex> = row.into_iter().map(Complex::from_re).collect();
        fft_pow2_in_place(&mut eig, Direction::Forward);

        // For fGn the embedding is provably nonnegative-definite; clamp
        // any numerically-negative eigenvalue at 0.
        let lambda: Vec<f64> = eig.iter().map(|z| z.re.max(0.0)).collect();

        // Synthesise W with E|W_k|² = λ_k/m and Hermitian symmetry so that
        // the FFT comes out real with the target covariance.
        let mut w = vec![Complex::ZERO; m];
        let mf = m as f64;
        w[0] = Complex::from_re((lambda[0] / mf).sqrt() * rng.standard_normal());
        w[half] = Complex::from_re((lambda[half] / mf).sqrt() * rng.standard_normal());
        for k in 1..half {
            let scale = (lambda[k] / (2.0 * mf)).sqrt();
            let re = scale * rng.standard_normal();
            let im = scale * rng.standard_normal();
            w[k] = Complex::new(re, im);
            w[m - k] = Complex::new(re, -im);
        }

        fft_pow2_in_place(&mut w, Direction::Forward);
        let sd = self.variance.sqrt();
        w.into_iter().take(n).map(|z| z.re * sd).collect()
    }
}

/// Fractional Brownian motion path: the cumulative sum of fGn,
/// `B_H(k) = Σ_{i≤k} X_i` — the storage/workload process of the
/// Norros fluid model (`vbr-qsim::analytic`).
pub fn fbm_path(fgn: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    fgn.iter()
        .map(|&x| {
            acc += x;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::acf::autocorrelation;

    #[test]
    fn deterministic_given_seed() {
        let g = DaviesHarte::new(0.8, 1.0);
        assert_eq!(g.generate(500, 42), g.generate(500, 42));
        assert_ne!(g.generate(500, 42), g.generate(500, 43));
    }

    #[test]
    fn h_half_is_white_noise() {
        let g = DaviesHarte::new(0.5, 1.0);
        let x = g.generate(40_000, 1);
        let r = autocorrelation(&x, 5);
        for &v in &r[1..] {
            assert!(v.abs() < 0.02, "white-noise ACF should vanish, got {v}");
        }
    }

    #[test]
    fn sample_acf_matches_fgn_theory() {
        let h = 0.8;
        let g = DaviesHarte::new(h, 1.0);
        let x = g.generate(65_536, 2);
        let r = autocorrelation(&x, 20);
        let want = fgn_acvf(h, 20);
        for k in 1..=20 {
            assert!(
                (r[k] - want[k]).abs() < 0.05,
                "lag {k}: sample {} vs theory {}",
                r[k],
                want[k]
            );
        }
    }

    #[test]
    fn mean_zero_and_target_variance() {
        let g = DaviesHarte::new(0.75, 9.0);
        let x = g.generate(65_536, 3);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var - 9.0).abs() < 1.2, "var {var}");
    }

    #[test]
    fn antipersistent_case_works_too() {
        let g = DaviesHarte::new(0.3, 1.0);
        let x = g.generate(30_000, 4);
        let r = autocorrelation(&x, 1);
        // fGn with H = 0.3 has γ_1 = 2^{2H−1} − 1 ≈ −0.2422.
        assert!((r[1] + 0.2422).abs() < 0.03, "r(1) = {}", r[1]);
    }

    #[test]
    fn long_generation_is_fast_and_correct_length() {
        let g = DaviesHarte::new(0.8, 1.0);
        let x = g.generate(171_000, 5);
        assert_eq!(x.len(), 171_000);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fbm_path_is_cumsum_and_self_similar() {
        let h = 0.8;
        let fgn = DaviesHarte::new(h, 1.0).generate(65_536, 21);
        let path = fbm_path(&fgn);
        assert_eq!(path.len(), fgn.len());
        assert!((path[0] - fgn[0]).abs() < 1e-12);
        assert!((path[9] - fgn[..10].iter().sum::<f64>()).abs() < 1e-9);
        // Self-similarity: Var[B(2t)] / Var[B(t)] = 2^{2H} across fresh
        // realisations — check via increments over disjoint blocks.
        let var_at = |span: usize| {
            let incs: Vec<f64> = path
                .chunks_exact(span)
                .map(|c| c.last().unwrap() - c.first().unwrap())
                .collect();
            let m = incs.iter().sum::<f64>() / incs.len() as f64;
            incs.iter().map(|v| (v - m).powi(2)).sum::<f64>() / incs.len() as f64
        };
        let ratio = var_at(2_048) / var_at(1_024);
        let want = 2f64.powf(2.0 * h);
        assert!(
            (ratio / want - 1.0).abs() < 0.45,
            "variance ratio {ratio} vs 2^2H = {want}"
        );
    }

    #[test]
    fn small_n_edge_cases() {
        let g = DaviesHarte::new(0.8, 1.0);
        assert!(g.generate(0, 1).is_empty());
        assert_eq!(g.generate(1, 1).len(), 1);
        assert_eq!(g.generate(2, 1).len(), 2);
        assert_eq!(g.generate(3, 1).len(), 3);
    }
}
