//! Theoretical autocovariance/autocorrelation sequences of the two exact
//! LRD models used in the workspace: fractional ARIMA(0, d, 0) and
//! fractional Gaussian noise.

/// Converts a Hurst parameter to the fractional-differencing parameter
/// `d = H − ½` (paper §4.1).
pub fn hurst_to_d(hurst: f64) -> f64 {
    assert!(
        (0.5..1.0).contains(&hurst),
        "LRD generation requires H in [0.5, 1), got {hurst}"
    );
    hurst - 0.5
}

/// Autocorrelations `ρ_k` of fractional ARIMA(0, d, 0), paper Eq (6):
/// `ρ_k = Π_{i=1..k} (i − 1 + d)/(i − d)`, computed by the stable
/// recursion `ρ_k = ρ_{k−1} (k − 1 + d)/(k − d)`.
///
/// Returns `ρ_0..=ρ_max_lag` (so `max_lag + 1` values, `ρ_0 = 1`).
pub fn farima_acf(d: f64, max_lag: usize) -> Vec<f64> {
    assert!(
        (-0.5..0.5).contains(&d),
        "fractional ARIMA requires -1/2 < d < 1/2, got {d}"
    );
    let mut rho = Vec::with_capacity(max_lag + 1);
    rho.push(1.0);
    for k in 1..=max_lag {
        let k = k as f64;
        let prev = *rho.last().unwrap();
        rho.push(prev * (k - 1.0 + d) / (k - d));
    }
    rho
}

/// Autocovariances `γ_k` of unit-variance fractional Gaussian noise
/// (the increment process of fractional Brownian motion):
/// `γ_k = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H})`.
pub fn fgn_acvf(hurst: f64, max_lag: usize) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&hurst) && hurst > 0.0,
        "fGn requires H in (0, 1), got {hurst}"
    );
    let h2 = 2.0 * hurst;
    (0..=max_lag)
        .map(|k| {
            let k = k as f64;
            0.5 * ((k + 1.0).powf(h2) - 2.0 * k.powf(h2) + (k - 1.0).abs().powf(h2))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farima_acf_closed_form() {
        // ρ_1 = d/(1−d); ρ_2 = d(1+d)/((1−d)(2−d)) — paper Eq (6).
        let d = 0.3;
        let rho = farima_acf(d, 2);
        assert!((rho[1] - d / (1.0 - d)).abs() < 1e-15);
        assert!((rho[2] - d * (1.0 + d) / ((1.0 - d) * (2.0 - d))).abs() < 1e-15);
    }

    #[test]
    fn farima_acf_hyperbolic_tail() {
        // ρ_k ~ c k^{2d−1}: the log-log slope over large k approaches 2d−1.
        let d = 0.3;
        let rho = farima_acf(d, 20_000);
        let slope = (rho[20_000].ln() - rho[2_000].ln())
            / ((20_000f64).ln() - (2_000f64).ln());
        assert!((slope - (2.0 * d - 1.0)).abs() < 0.01, "slope {slope}");
    }

    #[test]
    fn farima_d_zero_is_white_noise() {
        let rho = farima_acf(0.0, 10);
        assert_eq!(rho[0], 1.0);
        for &r in &rho[1..] {
            assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn fgn_acvf_half_is_white_noise() {
        let g = fgn_acvf(0.5, 10);
        assert!((g[0] - 1.0).abs() < 1e-12);
        for &v in &g[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn fgn_acvf_sums_to_aggregate_variance() {
        // Var(Σ_{i=1}^{n} X_i) = n^{2H} for unit fGn:
        // n γ_0 + 2 Σ_{k=1}^{n−1} (n−k) γ_k = n^{2H} (telescoping).
        for &h in &[0.6, 0.75, 0.9] {
            let n = 100usize;
            let g = fgn_acvf(h, n);
            let mut var = n as f64 * g[0];
            for (k, &gk) in g.iter().enumerate().skip(1) {
                var += 2.0 * (n - k) as f64 * gk;
            }
            let want = (n as f64).powf(2.0 * h);
            assert!((var - want).abs() < 1e-6 * want, "H={h}: {var} vs {want}");
        }
    }

    #[test]
    fn fgn_acvf_positive_for_persistent_h() {
        let g = fgn_acvf(0.8, 1000);
        for (k, &v) in g.iter().enumerate() {
            assert!(v > 0.0, "γ_{k} = {v} should be positive for H > 1/2");
        }
    }

    #[test]
    fn fgn_acvf_negative_for_antipersistent_h() {
        let g = fgn_acvf(0.3, 10);
        for &v in &g[1..] {
            assert!(v < 0.0, "antipersistent fGn must have negative correlations");
        }
    }

    #[test]
    fn hurst_to_d_maps_correctly() {
        assert!((hurst_to_d(0.8) - 0.3).abs() < 1e-15);
        assert!((hurst_to_d(0.5) - 0.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "H in [0.5, 1)")]
    fn hurst_out_of_range_rejected() {
        hurst_to_d(1.0);
    }
}
