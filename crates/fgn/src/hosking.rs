//! Hosking's exact algorithm for generating fractional ARIMA(0, d, 0)
//! sample paths — the paper's traffic generator (§4.1, Eqs 6–12).
//!
//! Each point is drawn from the exact conditional distribution given the
//! entire past (a Durbin–Levinson recursion), so the output has *exactly*
//! the fARIMA autocorrelation function at every lag. Cost is `O(n²)` —
//! the paper reports 10 hours for 171 000 points on a 1994 workstation;
//! see [`crate::davies_harte`] for the `O(n log n)` alternative.

use crate::acvf::hurst_to_d;
use vbr_stats::rng::Xoshiro256;

/// Exact fractional ARIMA(0, d, 0) generator.
///
/// ```
/// use vbr_fgn::Hosking;
///
/// let gen = Hosking::new(0.8, 1.0);
/// let x = gen.generate(256, 1);
/// assert_eq!(x.len(), 256);
/// // Persistent: positive lag-1 correlation (rho_1 = d/(1-d) = 3/7).
/// let r1: f64 = x.windows(2).map(|w| w[0] * w[1]).sum::<f64>()
///     / x.iter().map(|v| v * v).sum::<f64>();
/// assert!(r1 > 0.1, "lag-1 correlation {r1}");
/// ```
#[derive(Debug, Clone)]
pub struct Hosking {
    d: f64,
    variance: f64,
}

impl Hosking {
    /// Creates a generator with Hurst parameter `H ∈ [0.5, 1)` and
    /// marginal variance `v₀`.
    pub fn new(hurst: f64, variance: f64) -> Self {
        let d = hurst_to_d(hurst);
        assert!(variance > 0.0, "variance must be positive, got {variance}");
        Hosking { d, variance }
    }

    /// The fractional-differencing parameter `d = H − ½`.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Generates `n` points of zero-mean Gaussian fARIMA(0, d, 0)
    /// (paper Eqs 7–12).
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        self.generate_with(n, &mut rng)
    }

    /// Like [`generate`](Self::generate) but drawing from a caller-owned
    /// RNG (for streaming several dependent components off one seed).
    pub fn generate_with(&self, n: usize, rng: &mut Xoshiro256) -> Vec<f64> {
        let _span = vbr_stats::obs::span("fgn.hosking");
        if n == 0 {
            return Vec::new();
        }
        // Memoized: the partial-correlation coefficients φ_kk (Eqs 7–9)
        // depend only on (d, n), so repeat runs skip the Eq (7) inner
        // product against the ACF entirely — roughly half the O(n²)
        // flops. The remaining per-step work fuses the Eq (10) row
        // update with the Eq (11) dot product into one pass over the
        // row, preserving the original term order so output is
        // bit-identical to the unmemoized recursion (pinned by
        // `memoized_recursion_matches_inline_reference` below).
        let refl = crate::cache::hosking_reflections_cached(self.d, n);

        // One normal per step, pre-drawn as a single batch through the
        // vectorized quantile kernel. The batch path consumes one u64
        // per variate in output order, so the stream position and every
        // value are bit-identical to per-step draws.
        let mut gauss = vec![0.0; n];
        rng.fill_standard_normal(&mut gauss);

        let mut x = Vec::with_capacity(n);
        // X_0 ~ N(0, v_0).
        x.push(gauss[0] * self.variance.sqrt());

        // φ_{k,j} from the previous iteration (φ_{k−1,·}, 1-indexed by j).
        let mut phi_prev: Vec<f64> = Vec::with_capacity(n);
        let mut phi: Vec<f64> = Vec::with_capacity(n);

        let mut v = self.variance; // v_0

        for k in 1..n {
            let phi_kk = refl[k - 1];
            // Eq (10): φ_kj = φ_{k−1,j} − φ_kk φ_{k−1,k−j}, fused with
            // Eq (11): m_k = Σ_{j=1}^{k} φ_kj X_{k−j} — each freshly
            // computed row entry is consumed immediately, so the row is
            // traversed once instead of twice per step.
            phi.clear();
            let mut m = 0.0;
            for j in 1..k {
                let p = phi_prev[j - 1] - phi_kk * phi_prev[k - j - 1];
                phi.push(p);
                m += p * x[k - j];
            }
            phi.push(phi_kk);
            m += phi_kk * x[0];

            // Eq (12): v_k = (1 − φ_kk²) v_{k−1}
            v *= 1.0 - phi_kk * phi_kk;

            x.push(m + gauss[k] * v.sqrt());

            std::mem::swap(&mut phi_prev, &mut phi);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acvf::farima_acf;
    use vbr_stats::acf::autocorrelation;

    #[test]
    fn deterministic_given_seed() {
        let g = Hosking::new(0.8, 1.0);
        assert_eq!(g.generate(100, 7), g.generate(100, 7));
        assert_ne!(g.generate(100, 7), g.generate(100, 8));
    }

    /// The pre-memoization recursion, kept verbatim as the scalar twin:
    /// Eqs 7–12 inline, nothing cached or fused.
    fn reference_generate(d: f64, variance: f64, n: usize, seed: u64) -> Vec<f64> {
        let rho = farima_acf(d, n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        x.push(rng.standard_normal() * variance.sqrt());
        let mut phi_prev: Vec<f64> = Vec::new();
        let mut phi: Vec<f64> = Vec::new();
        let (mut n_prev, mut d_prev, mut v) = (0.0f64, 1.0f64, variance);
        for k in 1..n {
            let mut nk = rho[k];
            for j in 1..k {
                nk -= phi_prev[j - 1] * rho[k - j];
            }
            let dk = d_prev - n_prev * n_prev / d_prev;
            let phi_kk = nk / dk;
            phi.clear();
            for j in 1..k {
                phi.push(phi_prev[j - 1] - phi_kk * phi_prev[k - j - 1]);
            }
            phi.push(phi_kk);
            let mut m = 0.0;
            for (j, &p) in phi.iter().enumerate() {
                m += p * x[k - 1 - j];
            }
            v *= 1.0 - phi_kk * phi_kk;
            x.push(m + rng.standard_normal() * v.sqrt());
            std::mem::swap(&mut phi_prev, &mut phi);
            n_prev = nk;
            d_prev = dk;
        }
        x
    }

    #[test]
    fn memoized_recursion_matches_inline_reference() {
        // The reflection-coefficient cache and the fused Eq (10)+(11)
        // loop must not change a single bit of any sample path.
        for &(h, var, n, seed) in &[(0.8f64, 1.0f64, 300usize, 7u64), (0.6, 4.0, 128, 3), (0.95, 0.5, 64, 11)] {
            let g = Hosking::new(h, var);
            let got = g.generate(n, seed);
            let want = reference_generate(hurst_to_d(h), var, n, seed);
            assert_eq!(got.len(), want.len());
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "H={h} n={n} sample {i}");
            }
        }
    }

    #[test]
    fn h_half_is_white_noise() {
        let g = Hosking::new(0.5, 1.0);
        let x = g.generate(20_000, 1);
        let r = autocorrelation(&x, 5);
        for &v in &r[1..] {
            assert!(v.abs() < 0.03, "white-noise ACF should vanish, got {v}");
        }
    }

    #[test]
    fn sample_acf_matches_theory_at_short_lags() {
        let h = 0.8;
        let g = Hosking::new(h, 1.0);
        let x = g.generate(30_000, 2);
        let r = autocorrelation(&x, 10);
        let want = farima_acf(hurst_to_d(h), 10);
        for k in 1..=10 {
            assert!(
                (r[k] - want[k]).abs() < 0.05,
                "lag {k}: sample {} vs theory {}",
                r[k],
                want[k]
            );
        }
    }

    #[test]
    fn marginal_variance_matches() {
        let g = Hosking::new(0.75, 4.0);
        let x = g.generate(30_000, 3);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
        // LRD sample variance converges slowly; generous tolerance.
        assert!((var - 4.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn aggregated_variance_decays_slowly() {
        // For H = 0.85, Var(X^(m)) ~ m^{2H−2} = m^{−0.3}; for white noise
        // it's m^{−1}. At m = 100 the ratio to Var(X) should be ≈ 0.25,
        // way above the 0.01 an SRD process would give.
        let g = Hosking::new(0.85, 1.0);
        let x = g.generate(50_000, 4);
        let m = 100;
        let agg: Vec<f64> = x
            .chunks(m)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let var_agg = {
            let mu = agg.iter().sum::<f64>() / agg.len() as f64;
            agg.iter().map(|v| (v - mu).powi(2)).sum::<f64>() / agg.len() as f64
        };
        assert!(var_agg > 0.08, "aggregated variance {var_agg} too small — no LRD");
    }

    #[test]
    fn empty_and_single() {
        let g = Hosking::new(0.8, 1.0);
        assert!(g.generate(0, 1).is_empty());
        assert_eq!(g.generate(1, 1).len(), 1);
    }
}
