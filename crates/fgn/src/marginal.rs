//! The marginal-distribution transform of §4.2, paper Eq (13):
//! `Y_k = F⁻¹_{Γ/P}(F_N(X_k))` — each Gaussian point is pushed through
//! the normal CDF and the target quantile function, preserving the rank
//! (and hence the Hurst parameter) while imposing the Gamma/Pareto
//! marginal.
//!
//! Like the paper's implementation, the inverse target CDF can be
//! evaluated through a 10 000-point lookup table; an exact mode is also
//! provided (the paper's Fig 16 discussion notes the table's tail
//! truncation is one source of model error — we can quantify it).

use vbr_stats::dist::ContinuousDist;
use vbr_stats::special::{norm_cdf, norm_quantile};

/// How the target quantile function is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMode {
    /// Exact quantile evaluation at every point.
    Exact,
    /// Linear interpolation in a precomputed `N`-point table (the paper
    /// used `N = 10 000`). Probabilities beyond the table's ends are
    /// clamped to the end values — reproducing the tail-truncation
    /// artefact the paper observed.
    ///
    /// The knots are tabulated in *source* (z) space as well as target
    /// space, so the hot path is a grid lookup plus one linear
    /// interpolation — no `Φ` or quantile evaluation per sample. That
    /// is the whole point of the paper's table: at streaming rates the
    /// transform costs a few loads per sample instead of a
    /// transcendental.
    Table(usize),
}

/// Probability-integral transform from a Gaussian process to an arbitrary
/// target marginal. Owns the target distribution (pass `&D` — every
/// `&impl ContinuousDist` is itself a `ContinuousDist` — to borrow it
/// instead) and the table.
#[derive(Debug, Clone)]
pub struct MarginalTransform<D: ContinuousDist> {
    target: D,
    /// Mean of the source Gaussian process.
    src_mean: f64,
    /// Standard deviation of the source Gaussian process.
    src_sd: f64,
    mode: TableMode,
    /// Quantile table at probabilities `(i + ½)/N` (empty in exact mode).
    table: Vec<f64>,
    /// Standardised source positions of the knots, `Φ⁻¹((i + ½)/N)`
    /// (empty in exact mode). Interpolation runs knot-to-knot in this
    /// space, so mapping a sample needs no CDF evaluation.
    zknots: Vec<f64>,
    /// Uniform acceleration grid over `[zknots[0], zknots[N−1]]`: cell
    /// `g` holds the largest knot index whose z is ≤ the cell's left
    /// edge, so a lookup lands at most a couple of knots short.
    zgrid: Vec<u32>,
    zgrid_lo: f64,
    zgrid_inv_step: f64,
    /// Per-interval interpolation slopes
    /// `(table[i+1] − table[i]) / (zknots[i+1] − zknots[i])` (length
    /// `N − 1`; empty in exact mode). Precomputing them removes the
    /// per-sample division from the hot path: a lookup is then
    /// `table[i] + (z − zknots[i]) · slopes[i]` — one subtract, one
    /// multiply, one add.
    slopes: Vec<f64>,
}

impl<D: ContinuousDist> MarginalTransform<D> {
    /// Builds a transform from `N(src_mean, src_sd²)` to `target`.
    pub fn new(target: D, src_mean: f64, src_sd: f64, mode: TableMode) -> Self {
        assert!(src_sd > 0.0, "source std dev must be positive");
        let (table, zknots): (Vec<f64>, Vec<f64>) = match mode {
            TableMode::Exact => (Vec::new(), Vec::new()),
            TableMode::Table(n) => {
                assert!(n >= 2, "table needs at least 2 points");
                (0..n)
                    .map(|i| {
                        let u = (i as f64 + 0.5) / n as f64;
                        (target.quantile(u), norm_quantile(u))
                    })
                    .unzip()
            }
        };
        let (zgrid, zgrid_lo, zgrid_inv_step) = match zknots.as_slice() {
            [] => (Vec::new(), 0.0, 0.0),
            zs => {
                let (lo, hi) = (zs[0], zs[zs.len() - 1]);
                let cells = 2 * zs.len();
                let step = (hi - lo) / cells as f64;
                let mut grid = Vec::with_capacity(cells);
                let mut i = 0u32;
                for g in 0..cells {
                    let edge = lo + g as f64 * step;
                    while (i as usize + 1) < zs.len() && zs[i as usize + 1] <= edge {
                        i += 1;
                    }
                    grid.push(i);
                }
                (grid, lo, 1.0 / step)
            }
        };
        let slopes = if table.len() >= 2 {
            (0..table.len() - 1)
                .map(|i| (table[i + 1] - table[i]) / (zknots[i + 1] - zknots[i]))
                .collect()
        } else {
            Vec::new()
        };
        MarginalTransform {
            target,
            src_mean,
            src_sd,
            mode,
            table,
            zknots,
            zgrid,
            zgrid_lo,
            zgrid_inv_step,
            slopes,
        }
    }

    /// Maps one Gaussian value to the target marginal.
    pub fn map(&self, x: f64) -> f64 {
        match self.mode {
            TableMode::Exact => self.map_exact(x),
            TableMode::Table(_) => self.map_table_one(x),
        }
    }

    #[inline]
    fn map_exact(&self, x: f64) -> f64 {
        // Tripwire (debug builds): a NaN/Inf here propagates silently
        // through `norm_cdf` into the output; production callers that
        // may see hostile samples use `try_map_block_from`/
        // `try_map_series` for the typed refusal.
        debug_assert!(x.is_finite(), "non-finite sample {x} at the marginal-transform seam");
        let u = norm_cdf((x - self.src_mean) / self.src_sd);
        self.target.quantile(u.clamp(1e-300, 1.0 - 1e-16))
    }

    /// The per-sample table walk: standardise, locate the knot cell via
    /// the uniform grid, interpolate linearly in z. Beyond the
    /// first/last knot (|u − ½| > ½ − ½N) the output clamps to the table
    /// ends, as in the paper.
    ///
    /// This single function *is* the hot path for every entry point —
    /// [`map`](Self::map), [`map_inplace`](Self::map_inplace),
    /// [`map_series`](Self::map_series) and the blocked kernel all
    /// inline it — so scalar and batch mapping are bit-identical by
    /// construction, independent of block boundaries.
    #[inline(always)]
    fn map_table_one(&self, x: f64) -> f64 {
        // Tripwire (debug builds): a NaN z fails every knot comparison
        // and interpolates to NaN without any signal. See
        // `try_map_block_from` for the release-mode typed guard.
        debug_assert!(x.is_finite(), "non-finite sample {x} at the marginal-transform seam");
        let z = (x - self.src_mean) / self.src_sd;
        let (t, zk) = (&self.table, &self.zknots);
        let n = t.len();
        if z <= zk[0] {
            return t[0];
        }
        if z >= zk[n - 1] {
            return t[n - 1];
        }
        // Saturating float→usize cast clamps below-range z to cell 0;
        // `min` clamps the top end.
        let g = ((z - self.zgrid_lo) * self.zgrid_inv_step) as usize;
        let mut i = self.zgrid[g.min(self.zgrid.len() - 1)] as usize;
        // The grid entry undershoots by at most the number of knots one
        // cell can hold. Knot spacing is ≥ 1/(N·φ(0)) ≈ 2.5/N while a
        // cell spans range/(2N), so a cell holds ≤ ⌈range·φ(0)/2⌉ ≈ 2
        // knots for every table size this crate builds (range grows only
        // like √ln N). Three compare-and-add advances are therefore
        // branch-free in the vectorizable sense and cover the walk …
        i += (zk[i + 1] < z) as usize;
        i += (zk[i + 1] < z) as usize;
        i += (zk[i + 1] < z) as usize;
        // … and a loop backstop keeps correctness unconditional.
        while zk[i + 1] < z {
            i += 1;
        }
        t[i] + (z - zk[i]) * self.slopes[i]
    }

    /// Maps a whole series.
    pub fn map_series(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.map_series_into(xs, &mut out);
        out
    }

    /// [`map_series`](Self::map_series) into a caller-owned buffer
    /// (cleared and resized in place; repeat calls at one length
    /// allocate nothing).
    pub fn map_series_into(&self, xs: &[f64], out: &mut Vec<f64>) {
        let _span = vbr_stats::obs::span("fgn.marginal_map");
        out.clear();
        out.extend_from_slice(xs);
        self.map_inplace(out);
    }

    /// Transforms a buffer in place — the zero-copy kernel of the
    /// streaming pipeline: a Gaussian block becomes a traffic block
    /// without any intermediate vector.
    ///
    /// Table mode runs the blocked width-dispatched kernel; since each
    /// lane is the same inlined
    /// [`map_table_one`](Self::map_table_one) the scalar path uses,
    /// results are bit-identical to mapping one sample at a time, for
    /// any block size and any chunk width.
    pub fn map_inplace(&self, xs: &mut [f64]) {
        match self.mode {
            TableMode::Exact => {
                for x in xs {
                    *x = self.map_exact(*x);
                }
            }
            TableMode::Table(_) => match vbr_stats::simd::lanes() {
                2 => self.map_table_inplace_w::<2>(xs),
                8 => self.map_table_inplace_w::<8>(xs),
                _ => self.map_table_inplace_w::<4>(xs),
            },
        }
    }

    /// Fixed-width table-mode body of [`map_inplace`](Self::map_inplace)
    /// — public so `kernel_digest` and the width benches can pin a
    /// width. Panics (debug) if the transform is not in table mode.
    pub fn map_table_inplace_w<const W: usize>(&self, xs: &mut [f64]) {
        debug_assert!(matches!(self.mode, TableMode::Table(_)));
        let mut chunks = xs.chunks_exact_mut(W);
        for c in &mut chunks {
            // W independent table walks; the standardise + fused-lerp
            // arithmetic vectorizes, the (short, grid-accelerated)
            // index chase stays scalar.
            for x in c.iter_mut() {
                *x = self.map_table_one(*x);
            }
        }
        for x in chunks.into_remainder() {
            *x = self.map_table_one(*x);
        }
    }

    /// Fused generation step: draws the next `out.len()` Gaussian
    /// samples from `src` directly into `out` and transforms them in
    /// place. One buffer end to end — the streaming pipeline's inner
    /// loop (`O(block)` memory however long the trace).
    pub fn map_block_from<S: crate::stream::BlockSource>(&self, src: &mut S, out: &mut [f64]) {
        src.next_block(out);
        self.map_inplace(out);
    }

    /// Fallible [`map_block_from`](Self::map_block_from): verifies the
    /// generated Gaussian block is entirely finite *before* the
    /// transform (a NaN/Inf would otherwise interpolate to garbage
    /// silently) and that the transformed block is finite *after* it.
    /// On error, `out` holds the offending untransformed samples for
    /// diagnosis; no partial transform is applied.
    pub fn try_map_block_from<S: crate::stream::BlockSource>(
        &self,
        src: &mut S,
        out: &mut [f64],
    ) -> Result<(), crate::error::FgnError> {
        src.next_block(out);
        vbr_stats::error::check_all_finite(out)?;
        self.map_inplace(out);
        vbr_stats::error::check_all_finite(out)?;
        Ok(())
    }

    /// Fallible [`map_series`](Self::map_series): typed refusal on any
    /// non-finite input or output sample.
    pub fn try_map_series(&self, xs: &[f64]) -> Result<Vec<f64>, crate::error::FgnError> {
        let mut out = Vec::new();
        self.try_map_series_into(xs, &mut out)?;
        Ok(out)
    }

    /// [`try_map_series`](Self::try_map_series) into a caller-owned
    /// buffer — the fallible twin of
    /// [`map_series_into`](Self::map_series_into). Repeat calls at one
    /// length allocate nothing, so a fit/refit loop that re-transforms
    /// candidate series every iteration holds a single scratch vector
    /// instead of allocating two full-length buffers per call. On
    /// error, `out` holds the untransformed (or offending transformed)
    /// samples for diagnosis.
    pub fn try_map_series_into(
        &self,
        xs: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), crate::error::FgnError> {
        vbr_stats::error::check_all_finite(xs)?;
        self.map_series_into(xs, out);
        vbr_stats::error::check_all_finite(out)?;
        Ok(())
    }

    /// The largest value the transform can produce (table mode truncates
    /// the tail here; exact mode is unbounded).
    pub fn max_output(&self) -> f64 {
        match self.mode {
            TableMode::Exact => f64::INFINITY,
            TableMode::Table(_) => *self.table.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::dist::{GammaPareto, Normal};
    use vbr_stats::rng::Xoshiro256;

    fn target() -> GammaPareto {
        GammaPareto::from_params(27_791.0, 6_254.0, 9.0)
    }

    #[test]
    fn transform_is_monotone() {
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let mut prev = f64::NEG_INFINITY;
        for i in -40..=40 {
            let y = f.map(i as f64 / 10.0);
            assert!(y >= prev, "transform must be monotone");
            prev = y;
        }
    }

    #[test]
    fn median_maps_to_median() {
        let t = target();
        let f = MarginalTransform::new(&t, 5.0, 2.0, TableMode::Exact);
        let y = f.map(5.0); // source mean → u = 0.5
        assert!((y - t.quantile(0.5)).abs() < 1e-9);
    }

    #[test]
    fn transformed_gaussian_has_target_marginal() {
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let mut rng = Xoshiro256::seed_from_u64(21);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.standard_normal()).collect();
        let ys = f.map_series(&xs);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!(
            (mean - t.mean()).abs() / t.mean() < 0.01,
            "mean {mean} vs {}",
            t.mean()
        );
        // Empirical 99th percentile vs target quantile.
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = sorted[(sorted.len() as f64 * 0.99) as usize];
        assert!((p99 - t.quantile(0.99)).abs() / p99 < 0.03);
    }

    #[test]
    fn table_mode_matches_exact_in_body() {
        let t = target();
        let exact = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let table = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Table(10_000));
        for i in -25..=25 {
            let x = i as f64 / 10.0; // within ±2.5σ → central body
            let a = exact.map(x);
            let b = table.map(x);
            assert!((a - b).abs() / a < 1e-3, "x={x}: exact {a} vs table {b}");
        }
    }

    #[test]
    fn table_mode_truncates_tail() {
        // This is the artefact the paper reports: "the model does not hold
        // the Pareto tail … it decays too rapidly for very high values".
        let t = target();
        let exact = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let table = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Table(10_000));
        let deep = 5.0; // u ≈ 1 − 2.9e-7, beyond the table's last knot
        assert!(exact.map(deep) > table.map(deep));
        assert_eq!(table.map(deep), table.max_output());
        assert!(table.max_output().is_finite());
        assert_eq!(exact.max_output(), f64::INFINITY);
    }

    #[test]
    fn rank_correlation_preserved() {
        // The transform is monotone, so the *order* of points — and hence
        // rank-based dependence like H — is untouched.
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let xs: Vec<f64> = (0..1000).map(|_| rng.standard_normal()).collect();
        let ys = f.map_series(&xs);
        for i in 1..xs.len() {
            assert_eq!(
                xs[i] > xs[i - 1],
                ys[i] > ys[i - 1],
                "order flipped at {i}"
            );
        }
    }

    #[test]
    fn inplace_and_into_match_map_series() {
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Table(1000));
        let mut rng = Xoshiro256::seed_from_u64(8);
        let xs: Vec<f64> = (0..500).map(|_| rng.standard_normal()).collect();
        let want = f.map_series(&xs);
        let mut buf = xs.clone();
        f.map_inplace(&mut buf);
        assert_eq!(buf, want);
        let mut out = Vec::new();
        f.map_series_into(&xs, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn fused_block_path_matches_batch_pipeline() {
        // Streaming generate + transform in one buffer must reproduce
        // the batch generate-then-map pipeline exactly (prefix-exact
        // stream + identical per-sample map).
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Table(10_000));
        let gauss = crate::DaviesHarte::new(0.8, 1.0).generate(512, 3);
        let want = f.map_series(&gauss);
        let mut stream = crate::FgnStream::new(0.8, 1.0, 512, 3);
        let mut buf = vec![0.0; 512];
        f.map_block_from(&mut stream, &mut buf);
        assert_eq!(buf, want);
    }

    #[test]
    fn try_block_path_matches_infallible_path_and_rejects_nan() {
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Table(10_000));
        let mut stream = crate::FgnStream::new(0.8, 1.0, 512, 3);
        let mut want = vec![0.0; 512];
        f.map_block_from(&mut stream, &mut want);

        let mut stream = crate::FgnStream::new(0.8, 1.0, 512, 3);
        let mut got = vec![0.0; 512];
        f.try_map_block_from(&mut stream, &mut got).unwrap();
        assert_eq!(got, want);

        // A source that injects a NaN is refused with the sample-level
        // typed error, not transformed into plausible-looking traffic.
        struct Poisoned;
        impl crate::stream::BlockSource for Poisoned {
            fn next_block(&mut self, out: &mut [f64]) {
                out.fill(0.5);
                out[3] = f64::NAN;
            }
        }
        let mut buf = vec![0.0; 8];
        match f.try_map_block_from(&mut Poisoned, &mut buf) {
            Err(crate::error::FgnError::Data(
                vbr_stats::error::DataError::NonFiniteSample { index, .. },
            )) => assert_eq!(index, 3),
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
    }

    #[test]
    fn try_map_series_guards_both_seams() {
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let clean = [0.1, -0.7, 2.0];
        assert_eq!(f.try_map_series(&clean).unwrap(), f.map_series(&clean));
        assert!(f.try_map_series(&[0.1, f64::INFINITY]).is_err());
        assert!(f.try_map_series(&[f64::NAN]).is_err());
    }

    #[test]
    fn works_with_normal_target_as_identityish() {
        // Normal → Normal with same parameters is the identity map.
        let t = Normal::new(3.0, 2.0);
        let f = MarginalTransform::new(&t, 3.0, 2.0, TableMode::Exact);
        for &x in &[-1.0, 0.0, 3.0, 5.5, 9.0] {
            assert!((f.map(x) - x).abs() < 1e-8, "x={x} mapped to {}", f.map(x));
        }
    }
}
