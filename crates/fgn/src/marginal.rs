//! The marginal-distribution transform of §4.2, paper Eq (13):
//! `Y_k = F⁻¹_{Γ/P}(F_N(X_k))` — each Gaussian point is pushed through
//! the normal CDF and the target quantile function, preserving the rank
//! (and hence the Hurst parameter) while imposing the Gamma/Pareto
//! marginal.
//!
//! Like the paper's implementation, the inverse target CDF can be
//! evaluated through a 10 000-point lookup table; an exact mode is also
//! provided (the paper's Fig 16 discussion notes the table's tail
//! truncation is one source of model error — we can quantify it).

use vbr_stats::dist::ContinuousDist;
use vbr_stats::special::norm_cdf;

/// How the target quantile function is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMode {
    /// Exact quantile evaluation at every point.
    Exact,
    /// Linear interpolation in a precomputed `N`-point table (the paper
    /// used `N = 10 000`). Probabilities beyond the table's ends are
    /// clamped to the end values — reproducing the tail-truncation
    /// artefact the paper observed.
    Table(usize),
}

/// Probability-integral transform from a Gaussian process to an arbitrary
/// target marginal. Borrows the target distribution; owns the table.
#[derive(Debug, Clone)]
pub struct MarginalTransform<'a, D: ContinuousDist> {
    target: &'a D,
    /// Mean of the source Gaussian process.
    src_mean: f64,
    /// Standard deviation of the source Gaussian process.
    src_sd: f64,
    mode: TableMode,
    /// Quantile table at probabilities `(i + ½)/N` (empty in exact mode).
    table: Vec<f64>,
}

impl<'a, D: ContinuousDist> MarginalTransform<'a, D> {
    /// Builds a transform from `N(src_mean, src_sd²)` to `target`.
    pub fn new(target: &'a D, src_mean: f64, src_sd: f64, mode: TableMode) -> Self {
        assert!(src_sd > 0.0, "source std dev must be positive");
        let table = match mode {
            TableMode::Exact => Vec::new(),
            TableMode::Table(n) => {
                assert!(n >= 2, "table needs at least 2 points");
                (0..n)
                    .map(|i| target.quantile((i as f64 + 0.5) / n as f64))
                    .collect()
            }
        };
        MarginalTransform { target, src_mean, src_sd, mode, table }
    }

    /// Maps one Gaussian value to the target marginal.
    pub fn map(&self, x: f64) -> f64 {
        let u = norm_cdf((x - self.src_mean) / self.src_sd);
        match self.mode {
            TableMode::Exact => self.target.quantile(u.clamp(1e-300, 1.0 - 1e-16)),
            TableMode::Table(n) => {
                let t = &self.table;
                // Table knots sit at probabilities (i + ½)/n.
                let pos = u * n as f64 - 0.5;
                if pos <= 0.0 {
                    t[0]
                } else if pos >= (n - 1) as f64 {
                    t[n - 1]
                } else {
                    let i = pos as usize;
                    let frac = pos - i as f64;
                    t[i] + frac * (t[i + 1] - t[i])
                }
            }
        }
    }

    /// Maps a whole series.
    pub fn map_series(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.map(x)).collect()
    }

    /// The largest value the transform can produce (table mode truncates
    /// the tail here; exact mode is unbounded).
    pub fn max_output(&self) -> f64 {
        match self.mode {
            TableMode::Exact => f64::INFINITY,
            TableMode::Table(_) => *self.table.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbr_stats::dist::{GammaPareto, Normal};
    use vbr_stats::rng::Xoshiro256;

    fn target() -> GammaPareto {
        GammaPareto::from_params(27_791.0, 6_254.0, 9.0)
    }

    #[test]
    fn transform_is_monotone() {
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let mut prev = f64::NEG_INFINITY;
        for i in -40..=40 {
            let y = f.map(i as f64 / 10.0);
            assert!(y >= prev, "transform must be monotone");
            prev = y;
        }
    }

    #[test]
    fn median_maps_to_median() {
        let t = target();
        let f = MarginalTransform::new(&t, 5.0, 2.0, TableMode::Exact);
        let y = f.map(5.0); // source mean → u = 0.5
        assert!((y - t.quantile(0.5)).abs() < 1e-9);
    }

    #[test]
    fn transformed_gaussian_has_target_marginal() {
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let mut rng = Xoshiro256::seed_from_u64(21);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.standard_normal()).collect();
        let ys = f.map_series(&xs);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!(
            (mean - t.mean()).abs() / t.mean() < 0.01,
            "mean {mean} vs {}",
            t.mean()
        );
        // Empirical 99th percentile vs target quantile.
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = sorted[(sorted.len() as f64 * 0.99) as usize];
        assert!((p99 - t.quantile(0.99)).abs() / p99 < 0.03);
    }

    #[test]
    fn table_mode_matches_exact_in_body() {
        let t = target();
        let exact = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let table = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Table(10_000));
        for i in -25..=25 {
            let x = i as f64 / 10.0; // within ±2.5σ → central body
            let a = exact.map(x);
            let b = table.map(x);
            assert!((a - b).abs() / a < 1e-3, "x={x}: exact {a} vs table {b}");
        }
    }

    #[test]
    fn table_mode_truncates_tail() {
        // This is the artefact the paper reports: "the model does not hold
        // the Pareto tail … it decays too rapidly for very high values".
        let t = target();
        let exact = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let table = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Table(10_000));
        let deep = 5.0; // u ≈ 1 − 2.9e-7, beyond the table's last knot
        assert!(exact.map(deep) > table.map(deep));
        assert_eq!(table.map(deep), table.max_output());
        assert!(table.max_output().is_finite());
        assert_eq!(exact.max_output(), f64::INFINITY);
    }

    #[test]
    fn rank_correlation_preserved() {
        // The transform is monotone, so the *order* of points — and hence
        // rank-based dependence like H — is untouched.
        let t = target();
        let f = MarginalTransform::new(&t, 0.0, 1.0, TableMode::Exact);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let xs: Vec<f64> = (0..1000).map(|_| rng.standard_normal()).collect();
        let ys = f.map_series(&xs);
        for i in 1..xs.len() {
            assert_eq!(
                xs[i] > xs[i - 1],
                ys[i] > ys[i - 1],
                "order flipped at {i}"
            );
        }
    }

    #[test]
    fn works_with_normal_target_as_identityish() {
        // Normal → Normal with same parameters is the identity map.
        let t = Normal::new(3.0, 2.0);
        let f = MarginalTransform::new(&t, 3.0, 2.0, TableMode::Exact);
        for &x in &[-1.0, 0.0, 3.0, 5.5, 9.0] {
            assert!((f.map(x) - x).abs() < 1e-8, "x={x} mapped to {}", f.map(x));
        }
    }
}
