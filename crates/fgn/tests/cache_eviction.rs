//! Exact-count tests of the fGn vector-cache LRU eviction.
//!
//! The cache and its counters are process-global, so this file is its
//! own integration-test binary (own process) with a single `#[test]`
//! function: the hit/miss/eviction deltas below are exact, not lower
//! bounds.

use vbr_fgn::DaviesHarte;
use vbr_stats::obs::{counter_value, Counter};

#[test]
fn vec_cache_evicts_lru_only_and_counts_exactly() {
    let n = 256; // spectrum key (H, m = 512)
    let hot = DaviesHarte::new(0.8, 1.0);

    // First generation builds the hot spectrum cold: one miss in the
    // spectrum cache plus one in the ACVF cache its builder consults.
    let base = hot.generate(n, 7);
    assert_eq!(counter_value(Counter::FgnCacheMiss), 2);
    assert_eq!(counter_value(Counter::FgnCacheHit), 0);

    // Repeat generation is one pure spectrum-cache hit (the memoized
    // builder never re-runs, so the ACVF cache is not consulted) and
    // the output is bit-identical.
    let again = hot.generate(n, 7);
    assert_eq!(again, base);
    assert_eq!(counter_value(Counter::FgnCacheHit), 1);
    assert_eq!(counter_value(Counter::FgnCacheEvict), 0);

    // Overflow the 16-entry caches with 24 cold H values, touching the
    // hot entry every fourth insert so LRU order keeps it warm.
    for i in 0..24u32 {
        let h = 0.5 + 0.005 * f64::from(i);
        DaviesHarte::new(h, 1.0).generate(n, 1);
        if i % 4 == 0 {
            hot.generate(n, 7);
        }
    }
    // 25 distinct keys through each 16-slot cache (spectrum + ACVF):
    // exactly 9 evictions per cache, every one choosing a cold entry
    // over the hot one.
    assert_eq!(counter_value(Counter::FgnCacheEvict), 18);
    assert_eq!(counter_value(Counter::FgnCacheMiss), 50);

    // The hot entry survived the churn: one more touch is a hit (no
    // rebuild) and the output is still bit-identical.
    let hits_before = counter_value(Counter::FgnCacheHit);
    let survivor = hot.generate(n, 7);
    assert_eq!(counter_value(Counter::FgnCacheHit), hits_before + 1);
    assert_eq!(counter_value(Counter::FgnCacheMiss), 50, "hot entry must not rebuild");
    assert_eq!(survivor, base);
}
