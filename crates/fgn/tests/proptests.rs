//! Property-based tests for the LRD generators, the streaming engine,
//! and the marginal transform.

use proptest::prelude::*;
use vbr_fgn::{
    farima_acf, farima_via_circulant, fgn_acvf, BatchFarima, BatchFgn, DaviesHarte, FarimaStream,
    FgnStream, Hosking, MarginalTransform, TableMode,
};
use vbr_stats::dist::{ContinuousDist, GammaPareto};

proptest! {
    #[test]
    fn farima_acf_valid_correlations(d in 0.01f64..0.49, lags in 1usize..500) {
        let rho = farima_acf(d, lags);
        prop_assert_eq!(rho[0], 1.0);
        let mut prev = f64::INFINITY;
        for &r in &rho {
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(r <= prev + 1e-12, "fARIMA ACF must decay monotonically");
            prev = r;
        }
    }

    #[test]
    fn fgn_acvf_positive_definite_via_aggregate_variance(h in 0.05f64..0.95, n in 2usize..100) {
        // Var(Σ X_i) = n γ0 + 2 Σ (n−k) γk must be n^{2H} ≥ 0.
        let g = fgn_acvf(h, n);
        let mut var = n as f64 * g[0];
        for (k, &gk) in g.iter().enumerate().skip(1) {
            var += 2.0 * (n - k) as f64 * gk;
        }
        let want = (n as f64).powf(2.0 * h);
        prop_assert!((var - want).abs() < 1e-6 * want.max(1.0));
    }

    #[test]
    fn hosking_output_finite_and_deterministic(
        h in 0.5f64..0.95,
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let g = Hosking::new(h, 1.0);
        let a = g.generate(n, seed);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        prop_assert_eq!(a, g.generate(n, seed));
    }

    #[test]
    fn davies_harte_output_finite_and_deterministic(
        h in 0.05f64..0.95,
        n in 1usize..500,
        seed in 0u64..1000,
    ) {
        let g = DaviesHarte::new(h, 1.0);
        let a = g.generate(n, seed);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.iter().all(|v| v.is_finite()));
        prop_assert_eq!(a, g.generate(n, seed));
    }

    #[test]
    fn marginal_transform_monotone_and_in_support(
        mu in 100.0f64..1e5,
        cv in 0.05f64..0.6,
        a in 2.0f64..12.0,
        xs in prop::collection::vec(-5.0f64..5.0, 2..100),
    ) {
        let target = GammaPareto::from_params(mu, mu * cv, a);
        let xf = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Exact);
        let mut sorted = xs.clone();
        sorted.sort_by(|p, q| p.partial_cmp(q).unwrap());
        let mapped: Vec<f64> = sorted.iter().map(|&x| xf.map(x)).collect();
        for w in mapped.windows(2) {
            prop_assert!(w[1] >= w[0], "transform must be monotone");
        }
        for &y in &mapped {
            prop_assert!(y > 0.0 && y.is_finite());
        }
    }

    #[test]
    fn fgn_stream_prefix_bit_identical_across_block_sizes(
        h in 0.05f64..0.95,
        n in 1usize..1200,
        seed in 0u64..1000,
    ) {
        // The documented exactness contract (stream.rs): a stream with
        // block size B uses the same circulant embedding, spectrum and
        // RNG draw order as the batch generator at length B, so its
        // first B outputs are bit-identical to `generate(B, seed)`.
        // Past the first window the stream intentionally diverges from
        // any batch path (windowed embedding + power-preserving
        // cross-fade: exact marginals, approximate seam covariance), so
        // sameness beyond the prefix is distributional, not pathwise —
        // here checked as finiteness only.
        let g = DaviesHarte::new(h, 1.0);
        for block in [1usize, 7, 4096, n] {
            let batch = g.generate(block, seed);
            let mut s = FgnStream::new(h, 1.0, block, seed);
            let mut got = vec![0.0f64; block];
            s.next_block(&mut got);
            prop_assert_eq!(&got, &batch, "prefix diverges at block {}", block);
            let mut next = vec![0.0f64; block.min(64)];
            s.next_block(&mut next);
            prop_assert!(next.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn farima_stream_prefix_bit_identical_across_block_sizes(
        h in 0.5f64..0.95,
        n in 1usize..1200,
        seed in 0u64..1000,
    ) {
        // Same contract as the fGn stream, against the circulant fARIMA
        // batch comparator. The fARIMA embedding is not provably PSD,
        // so both paths are fallible: they must accept or reject the
        // same (H, block) inputs, and agree bit-for-bit when they accept.
        for block in [1usize, 7, 4096, n] {
            match FarimaStream::try_new(h, 1.0, block, seed) {
                Ok(mut s) => {
                    let batch = farima_via_circulant(h, 1.0, block, seed)
                        .expect("stream accepted but batch rejected the same geometry");
                    let mut got = vec![0.0f64; block];
                    s.next_block(&mut got);
                    prop_assert_eq!(&got, &batch, "prefix diverges at block {}", block);
                }
                Err(_) => {
                    prop_assert!(
                        farima_via_circulant(h, 1.0, block, seed).is_err(),
                        "batch accepted but stream rejected block {}", block
                    );
                }
            }
        }
    }

    #[test]
    fn batch_fgn_bit_identical_to_independent_streams(
        h in 0.05f64..0.95,
        block in 1usize..600,
        overlap_permille in 0usize..1001,
        n_sources in 1usize..5,
        chunks in prop::collection::vec(1usize..97, 1..12),
        seed0 in 0u64..1000,
        overlap_sel in 0u32..2,
    ) {
        let use_overlap = overlap_sel == 1;
        // The shared-spectrum batch contract: source i of a BatchFgn is
        // draw-for-draw bit-identical to an independent FgnStream with
        // the same seed, at arbitrary block/overlap geometry and under
        // arbitrary chunk splits with the batch's sources interleaved
        // (each batch round draws chunk c from every source in turn,
        // which a shared scratch window must not couple).
        let overlap = (block * overlap_permille) / 1000; // 0 ..= block
        let seeds: Vec<u64> = (0..n_sources as u64).map(|i| seed0 + i * 7).collect();
        let (mut batch, mut solos) = if use_overlap {
            (
                BatchFgn::try_with_overlap(h, 1.0, block, overlap, &seeds).unwrap(),
                seeds.iter()
                    .map(|&s| FgnStream::with_overlap(h, 1.0, block, overlap, s))
                    .collect::<Vec<_>>(),
            )
        } else {
            (
                BatchFgn::try_new(h, 1.0, block, &seeds).unwrap(),
                seeds.iter().map(|&s| FgnStream::new(h, 1.0, block, s)).collect(),
            )
        };
        for &c in &chunks {
            let mut a = vec![0.0f64; c];
            let mut b = vec![0.0f64; c];
            for (i, solo) in solos.iter_mut().enumerate() {
                batch.next_block(i, &mut a);
                solo.next_block(&mut b);
                for (k, (x, y)) in a.iter().zip(&b).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "source {} chunk {} sample {} diverged", i, c, k
                    );
                }
            }
        }
    }

    #[test]
    fn batch_state_interchangeable_with_stream_state(
        h in 0.05f64..0.95,
        block in 1usize..300,
        pre in 0usize..700,
        post in 1usize..200,
        seed in 0u64..1000,
    ) {
        // Kill/resume across engines: a checkpoint exported mid-stream
        // from a batch source restores into a fresh BatchFgn *and* into
        // an independent FgnStream (StreamState is one format), and both
        // resume bit-identically with the uninterrupted source.
        let seeds = [seed, seed ^ 0x5a5a];
        let mut batch = BatchFgn::try_new(h, 1.0, block, &seeds).unwrap();
        let mut buf = vec![0.0f64; pre.max(1)];
        if pre > 0 {
            batch.next_block(1, &mut buf[..pre]);
            // Desync source 0 so the shared scratch is dirty at export.
            batch.next_block(0, &mut buf[..pre.min(13)]);
        }
        let saved = batch.export_state(1);

        let mut fresh_batch = BatchFgn::try_new(h, 1.0, block, &seeds).unwrap();
        fresh_batch.restore_state(1, &saved).unwrap();
        let mut fresh_stream = FgnStream::new(h, 1.0, block, seeds[1]);
        fresh_stream.restore_state(&saved).unwrap();

        let mut want = vec![0.0f64; post];
        let mut got_b = vec![0.0f64; post];
        let mut got_s = vec![0.0f64; post];
        batch.next_block(1, &mut want);
        fresh_batch.next_block(1, &mut got_b);
        fresh_stream.next_block(&mut got_s);
        for k in 0..post {
            prop_assert_eq!(want[k].to_bits(), got_b[k].to_bits(), "batch resume at {}", k);
            prop_assert_eq!(want[k].to_bits(), got_s[k].to_bits(), "stream resume at {}", k);
        }
    }

    #[test]
    fn batch_farima_bit_identical_to_independent_streams(
        h in 0.5f64..0.95,
        block in 1usize..400,
        n_sources in 1usize..4,
        seed0 in 0u64..1000,
    ) {
        // fARIMA embeddings are fallible: the batch must accept exactly
        // when every independent stream accepts, and agree to the bit
        // when it does.
        let seeds: Vec<u64> = (0..n_sources as u64).map(|i| seed0 + i * 3).collect();
        match BatchFarima::try_new(h, 1.0, block, &seeds) {
            Ok(mut batch) => {
                let mut a = vec![0.0f64; block];
                let mut b = vec![0.0f64; block];
                for (i, &s) in seeds.iter().enumerate() {
                    let mut solo = FarimaStream::try_new(h, 1.0, block, s)
                        .expect("batch accepted but stream rejected");
                    batch.next_block(i, &mut a);
                    solo.next_block(&mut b);
                    for k in 0..block {
                        prop_assert_eq!(a[k].to_bits(), b[k].to_bits(), "source {} at {}", i, k);
                    }
                }
            }
            Err(_) => {
                prop_assert!(
                    FarimaStream::try_new(h, 1.0, block, seeds[0]).is_err(),
                    "stream accepted but batch rejected"
                );
            }
        }
    }

    #[test]
    fn table_map_matches_binary_search_reference(
        mu in 100.0f64..1e4,
        cv in 0.05f64..0.6,
        a in 2.0f64..12.0,
        n in 3usize..400,
        xs in prop::collection::vec(-6.0f64..6.0, 1..100),
    ) {
        // The grid-walk + precomputed-slope kernel against an
        // independent scalar oracle: rebuild the knots exactly as the
        // constructor does, locate the interval by binary search, and
        // interpolate with the original division formula. Agreement is
        // ≤ 1e-12 relative — the only arithmetic difference is
        // `(t·Δ)/Δz` vs `t·(Δ/Δz)`.
        let target = GammaPareto::from_params(mu, mu * cv, a);
        let xf = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(n));
        let (table, zknots): (Vec<f64>, Vec<f64>) = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                (target.quantile(u), vbr_stats::norm_quantile(u))
            })
            .unzip();
        for &x in &xs {
            let want = if x <= zknots[0] {
                table[0]
            } else if x >= zknots[n - 1] {
                table[n - 1]
            } else {
                let i = zknots.partition_point(|&z| z < x) - 1;
                table[i]
                    + (x - zknots[i]) * (table[i + 1] - table[i])
                        / (zknots[i + 1] - zknots[i])
            };
            let got = xf.map(x);
            prop_assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "x={}: kernel {} vs reference {}", x, got, want
            );
        }
    }

    #[test]
    fn table_map_inplace_bit_identical_across_block_sizes(
        mu in 100.0f64..1e4,
        xs in prop::collection::vec(-6.0f64..6.0, 1..200),
        cut in 0usize..200,
    ) {
        // Blocked mapping must not depend on where block boundaries
        // fall: mapping the whole buffer, mapping two arbitrary halves,
        // and mapping one element at a time all agree to the bit.
        let target = GammaPareto::from_params(mu, mu * 0.3, 5.0);
        let xf = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(500));
        let cut = cut.min(xs.len());
        let mut whole = xs.clone();
        xf.map_inplace(&mut whole);
        let mut split = xs.clone();
        {
            let (head, tail) = split.split_at_mut(cut);
            xf.map_inplace(head);
            xf.map_inplace(tail);
        }
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(whole[i].to_bits(), split[i].to_bits(), "cut={} at {}", cut, i);
            prop_assert_eq!(whole[i].to_bits(), xf.map(x).to_bits(), "scalar at {}", i);
        }
    }

    #[test]
    fn table_transform_bounded_by_table_extremes(
        mu in 100.0f64..1e4,
        x in -20.0f64..20.0,
    ) {
        let target = GammaPareto::from_params(mu, mu * 0.3, 5.0);
        let xf = MarginalTransform::new(&target, 0.0, 1.0, TableMode::Table(1_000));
        let y = xf.map(x);
        prop_assert!(y <= xf.max_output());
        prop_assert!(y >= target.quantile(0.5 / 1_000.0));
    }
}
