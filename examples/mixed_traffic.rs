//! Heterogeneous traffic on one link: movies, videoconferences and
//! sports feeds multiplexed together, with admission control — the
//! operational setting the paper's conclusions point at ("more movies of
//! the same and different types").
//!
//! ```sh
//! cargo run --release --example mixed_traffic
//! ```

use vbr::prelude::*;
use vbr::qsim::{admit_by_simulation, aggregate_arrivals_multi, FluidQueue};
use vbr::video::Genre;

fn main() {
    let frames = 12_000;
    let movie = generate_screenplay(&ScreenplayConfig::genre(Genre::ActionMovie, frames, 1));
    let conf =
        generate_screenplay(&ScreenplayConfig::genre(Genre::Videoconference, frames, 2));
    let sports = generate_screenplay(&ScreenplayConfig::genre(Genre::Sports, frames, 3));

    println!("per-source statistics:");
    println!("{:<16} {:>12} {:>8} {:>10}", "genre", "mean [Mb/s]", "CoV", "peak/mean");
    for (name, t) in [("action movie", &movie), ("conference", &conf), ("sports", &sports)] {
        let s = t.summary_frame();
        println!(
            "{:<16} {:>12.2} {:>8.2} {:>10.2}",
            name,
            t.mean_bandwidth_bps() / 1e6,
            s.coef_variation,
            s.peak_to_mean
        );
    }

    // Mix 2 movies + 4 conferences + 1 sports feed on one link.
    let sources: Vec<&Trace> = vec![&movie, &movie, &conf, &conf, &conf, &conf, &sports];
    let offsets = vec![0usize, 3_000, 500, 2_000, 4_500, 7_000, 1_500];
    let agg = aggregate_arrivals_multi(&sources, &offsets);
    let dt = movie.slice_duration();
    let mean_bps: f64 = agg.iter().sum::<f64>() / (agg.len() as f64 * dt);
    println!(
        "\nmix of {} sources: aggregate mean {:.2} Mb/s",
        sources.len(),
        mean_bps * 8.0 / 1e6
    );

    // Loss on the mixed link at several capacities.
    println!("{:>18} {:>12}", "capacity [Mb/s]", "P_l");
    for factor in [1.05, 1.15, 1.3, 1.5] {
        let cap = mean_bps * factor;
        let mut q = FluidQueue::new(0.002 * cap, cap);
        for &a in &agg {
            q.step(a, dt);
        }
        println!("{:>18.2} {:>12.2e}", cap * 8.0 / 1e6, q.loss_rate());
    }

    // Admission control per genre on a fixed 45 Mb/s (DS3-class) link.
    let link = 45e6 / 8.0; // bytes/s
    println!("\nadmission onto a 45 Mb/s link @ T_max = 2 ms, P_l <= 1e-3:");
    println!("{:<16} {:>10} {:>14}", "genre", "admitted", "utilisation");
    for (name, t) in [("action movie", &movie), ("conference", &conf), ("sports", &sports)] {
        let r = admit_by_simulation(
            t,
            link,
            0.002,
            LossTarget::Rate(1e-3),
            LossMetric::Overall,
            64,
            9,
        );
        println!(
            "{:<16} {:>10} {:>13.0}%",
            name,
            r.max_sources,
            r.utilization * 100.0
        );
    }
    println!("\nsmoother, lower-rate conferences pack far more densely than movies —");
    println!("burstiness (and H) set the admissible load, not just the mean rate.");
}
