//! Transport alternatives for VBR video, quantified: CBR smoothing
//! (the paper's introduction), plain VBR multiplexing (§5), layered
//! coding with priority queueing (§5.3) and coder-side peak clipping
//! (§6) — all on the same synthetic movie.
//!
//! ```sh
//! cargo run --release --example transport_tradeoffs
//! ```

use vbr::prelude::*;
use vbr::qsim::{min_cbr_rate, simulate_layered};

fn main() {
    let trace = generate_screenplay(&ScreenplayConfig::short(20_000, 77));
    let mean_mbps = trace.mean_bandwidth_bps() / 1e6;
    println!(
        "movie segment: {} frames, mean {:.2} Mb/s, peak/mean {:.2}\n",
        trace.frames(),
        mean_mbps,
        trace.summary_frame().peak_to_mean
    );

    // 1. CBR transport: constant rate, delay traded for bandwidth.
    println!("== CBR smoothing (intro: 'delay, wasted bandwidth') ==");
    println!("{:>14} {:>12} {:>13}", "max delay", "rate [Mb/s]", "utilisation");
    for delay in [5.0, 1.0, 0.25, 0.05] {
        let r = min_cbr_rate(&trace, delay, 30);
        println!(
            "{:>11.2} s {:>12.2} {:>12.0}%",
            delay,
            r.rate_bps * 8.0 / 1e6,
            r.utilization * 100.0
        );
    }

    // 2. VBR statistical multiplexing at interactive delay.
    println!("\n== VBR multiplexing @ T_max = 2 ms, P_l <= 1e-4 ==");
    for n in [1usize, 10] {
        let sim = MuxSim::new(&trace, n, 3);
        let c = sim.required_capacity(0.002, LossTarget::Rate(1e-4), LossMetric::Overall, 20)
            / n as f64;
        println!(
            "N = {n:>2}: {:.2} Mb/s per source ({:.0}% utilisation)",
            c * 8.0 / 1e6,
            100.0 * mean_mbps / (c * 8.0 / 1e6)
        );
    }
    println!("VBR at N = 10 beats even 5-second-delay CBR on bandwidth, at 2 ms delay.");

    // 3. Layered coding + priority queueing: run the link *under* the
    //    total load and keep the base layer clean.
    println!("\n== layered coding with priority queueing (§5.3) ==");
    let capacity = trace.mean_bandwidth_bps() / 8.0 * 0.97;
    println!(
        "link at 97% of the mean rate ({:.2} Mb/s):",
        capacity * 8.0 / 1e6
    );
    println!("{:>14} {:>12} {:>14} {:>12}", "base frac", "base loss", "enh. loss", "unlayered");
    for base in [0.5, 0.7, 0.85] {
        let r = simulate_layered(&trace, base, capacity, 200_000.0);
        println!(
            "{:>14.2} {:>12.2e} {:>14.2e} {:>12.2e}",
            base, r.base_loss, r.enhancement_loss, r.unlayered_loss
        );
    }
    println!("the base layer rides through congestion that would corrupt 100% of an");
    println!("unlayered stream's frames at random.");

    // 4. Peak clipping at the coder (§6).
    println!("\n== coder-side peak clipping (§6) ==");
    let p999 = {
        let mut v = trace.frame_series();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[(v.len() as f64 * 0.999) as usize] as u32
    };
    let clipped = trace.clip(p999);
    for (name, t) in [("raw", &trace), ("clipped @99.9pct", &clipped)] {
        let sim = MuxSim::new(t, 1, 5);
        let c = sim.required_capacity(0.002, LossTarget::Zero, LossMetric::Overall, 20);
        println!(
            "{name:<18} zero-loss capacity {:.2} Mb/s (peak/mean {:.2})",
            c * 8.0 / 1e6,
            t.summary_frame().peak_to_mean
        );
    }
    println!("\"It will be much better trade-off for the coder to optimize its use of");
    println!("the available bandwidth … than for the network to accommodate such");
    println!("exceptional bursts.\"");
}
