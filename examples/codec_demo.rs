//! The intraframe coder end to end (§2): synthesise scenes, code them
//! with DCT + uniform quantisation + run-length + Huffman, decode,
//! measure quality and watch the bandwidth respond to scene content.
//!
//! ```sh
//! cargo run --release --example codec_demo
//! ```

use vbr::prelude::*;
use vbr::video::psnr;

fn main() {
    let (w, h) = (128, 128);

    // Three scene types of increasing complexity.
    let scenes = [
        ("placid dialogue", SceneSynthesizer::new(SceneSpec::placid(1))),
        (
            "medium action",
            SceneSynthesizer::new(SceneSpec {
                complexity: 0.5,
                motion: 0.8,
                brightness: 128.0,
                seed: 2,
            }),
        ),
        ("space battle", SceneSynthesizer::new(SceneSpec::action(3))),
    ];

    // Train one fixed-table coder on a mix of all scene types, like a
    // real coder shipping fixed Huffman tables.
    let mut training = Vec::new();
    for (_, s) in &scenes {
        for t in 0..2 {
            training.push(s.frame(t, w, h));
        }
    }
    let coder = IntraframeCoder::train(
        CoderConfig { quant_step: 16.0, slices_per_frame: 8 },
        &training,
    );

    println!("coder: 8x8 DCT, uniform quantiser (step 16), zig-zag RLE, Huffman");
    println!("frame: {w}x{h} monochrome, 8 slices/frame\n");
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "scene", "bytes/frame", "compression", "PSNR [dB]", "kb/s @24fps"
    );

    for (name, scene) in &scenes {
        let mut bytes = 0u64;
        let mut quality = 0.0;
        let frames = 24;
        for t in 0..frames {
            let frame = scene.frame(t, w, h);
            let coded = coder.code_frame(&frame);
            bytes += coded.total_bytes() as u64;
            let recon = coder.decode_frame(&coded, w, h);
            quality += psnr(&frame, &recon);
        }
        let per_frame = bytes as f64 / frames as f64;
        println!(
            "{:<18} {:>12.0} {:>11.1}x {:>10.1} {:>10.0}",
            name,
            per_frame,
            (w * h) as f64 / per_frame,
            quality / frames as f64,
            per_frame * 24.0 * 8.0 / 1e3
        );
    }

    // Show the per-slice breakdown for one busy frame.
    let frame = scenes[2].1.frame(0, w, h);
    let coded = coder.code_frame(&frame);
    println!("\nper-slice bytes of one 'space battle' frame: {:?}", coded.slice_bytes());

    // Build a mini VBR trace by cutting between scenes, as a movie does.
    let mut slice_bytes = Vec::new();
    let cuts = [0usize, 1, 0, 2, 1, 2, 2, 0];
    for (shot, &scene_idx) in cuts.iter().enumerate() {
        for t in 0..12 {
            let f = scenes[scene_idx].1.frame(shot * 12 + t, w, h);
            slice_bytes.extend(coder.code_frame(&f).slice_bytes());
        }
    }
    let trace = Trace::from_slices(slice_bytes, 8, 24.0);
    let s = trace.summary_frame();
    println!(
        "\nmini-trace across {} shots: mean {:.0} B/frame, CoV {:.2}, peak/mean {:.2}",
        cuts.len(),
        s.mean,
        s.coef_variation,
        s.peak_to_mean
    );
    println!("scene cuts are what make intraframe VBR video bursty.");

    // Interframe (predictive) coding: the paper's §1 contrast —
    // "greater compression, burstiness and much stronger dependence on
    // motion result from interframe coding".
    println!("\n== interframe (I/P, GOP = 12) vs intraframe ==");
    println!(
        "{:<18} {:>14} {:>14} {:>12}",
        "scene", "intra B/frame", "inter B/frame", "P/I ratio"
    );
    for (name, scene) in &scenes {
        let mut inter = vbr::video::InterframeCoder::new(coder.clone(), 12);
        let frames: Vec<Frame> = (0..24).map(|t| scene.frame(t, w, h)).collect();
        let seq = inter.code_sequence(&frames);
        let inter_avg =
            seq.iter().map(|&(b, _)| b as f64).sum::<f64>() / seq.len() as f64;
        let intra_avg = frames
            .iter()
            .map(|f| coder.code_frame(f).total_bytes() as f64)
            .sum::<f64>()
            / frames.len() as f64;
        let i_bytes = seq[0].0 as f64;
        let p_avg: f64 = seq
            .iter()
            .filter(|&&(_, k)| k == vbr::video::FrameKind::P)
            .map(|&(b, _)| b as f64)
            .sum::<f64>()
            / seq.iter().filter(|&&(_, k)| k == vbr::video::FrameKind::P).count() as f64;
        println!(
            "{:<18} {:>14.0} {:>14.0} {:>12.2}",
            name,
            intra_avg,
            inter_avg,
            p_avg / i_bytes
        );
    }
    println!("interframe compresses harder, and its rate swings with motion —");
    println!("the burstier regime the paper attributes to frame-difference coding.");
}
