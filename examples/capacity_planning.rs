//! Capacity planning for multiplexed VBR video (§5): how much bandwidth
//! per source does a link need as more sources share it, and how does the
//! buffer/bandwidth tradeoff look?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use vbr::prelude::*;

fn main() {
    // A 20 000-frame trace keeps this example fast; the repro harness
    // (`repro fig14`/`fig15`) runs the full 171 000 frames.
    let trace = generate_screenplay(&ScreenplayConfig::short(20_000, 9));
    let s = trace.summary_frame();
    let mean_mbps = trace.mean_bandwidth_bps() / 1e6;
    let peak_mbps = s.max * trace.fps() * 8.0 / 1e6;
    println!(
        "single source: mean {mean_mbps:.2} Mb/s, frame-peak {peak_mbps:.2} Mb/s, \
         peak/mean {:.2}",
        s.peak_to_mean
    );

    // Q-C tradeoff for one source (one curve of Fig 14).
    println!("\n== Q-C curve, N = 1, P_l <= 1e-3 ==");
    let sim = MuxSim::new(&trace, 1, 1);
    let grid = [0.0005, 0.001, 0.002, 0.005, 0.02, 0.1];
    let curve = qc_curve(&sim, &grid, LossTarget::Rate(1e-3), LossMetric::Overall, 22);
    println!("{:>12} {:>18}", "T_max [ms]", "C/source [Mb/s]");
    for p in &curve {
        println!(
            "{:>12.2} {:>18.2}",
            p.t_max_secs * 1e3,
            p.capacity_per_source * 8.0 / 1e6
        );
    }
    println!("(note the knee: below ~2 ms the required bandwidth climbs steeply)");

    // Statistical multiplexing gain (Fig 15).
    println!("\n== multiplexing gain @ T_max = 2 ms, P_l <= 1e-3 ==");
    let pts = smg_curve(
        &trace,
        &[1, 2, 5, 10, 20],
        0.002,
        LossTarget::Rate(1e-3),
        LossMetric::Overall,
        20,
        7,
    );
    println!("{:>4} {:>18} {:>18}", "N", "C/source [Mb/s]", "gain realised");
    for p in &pts {
        println!(
            "{:>4} {:>18.2} {:>17.0}%",
            p.n_sources,
            p.capacity_per_source * 8.0 / 1e6,
            p.gain_realized * 100.0
        );
    }
    println!(
        "(the paper: with 5 sources ~72% of the peak-to-mean gain is realised)"
    );

    // Peak clipping (§6's recommendation): clip the most extreme frames at
    // the 99.9th percentile and see the resource saving.
    let p999 = {
        let mut v = trace.frame_series();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[(v.len() as f64 * 0.999) as usize]
    };
    let clipped = trace.clip(p999 as u32);
    let sim_clip = MuxSim::new(&clipped, 1, 1);
    let c_raw = sim.required_capacity(0.002, LossTarget::Zero, LossMetric::Overall, 22);
    let c_clip = sim_clip.required_capacity(0.002, LossTarget::Zero, LossMetric::Overall, 22);
    println!(
        "\n== peak clipping at the 99.9th percentile ==\n\
         zero-loss capacity: raw {:.2} Mb/s -> clipped {:.2} Mb/s ({:.0}% saved)",
        c_raw * 8.0 / 1e6,
        c_clip * 8.0 / 1e6,
        (1.0 - c_clip / c_raw) * 100.0
    );
}
