//! The Fig 16 experiment in miniature: how close does the 4-parameter
//! model come to the trace in an *engineering* test (required capacity at
//! equal buffer and loss target), and how much does each ingredient —
//! the Pareto tail and the long-range dependence — matter?
//!
//! ```sh
//! cargo run --release --example model_vs_trace
//! ```

use vbr::prelude::*;

fn main() {
    let n_frames = 20_000;
    let trace = generate_screenplay(&ScreenplayConfig::short(n_frames, 4));
    let est = estimate_trace(
        &trace,
        &EstimateOptions { hurst_method: HurstMethod::VarianceTime, ..Default::default() },
    );
    println!(
        "fitted parameters: mu={:.0} sigma={:.0} m_T={:.1} H={:.3}\n",
        est.params.mu_gamma, est.params.sigma_gamma, est.params.tail_slope, est.params.hurst
    );

    let variants: Vec<(&str, Trace)> = vec![
        ("trace itself", trace.clone()),
        (
            "full model (LRD + Gamma/Pareto)",
            SourceModel::full(est.params).generate_trace(n_frames, 24.0, 30, 11),
        ),
        (
            "fARIMA, Gaussian marginals",
            SourceModel::gaussian_marginal(est.params).generate_trace(n_frames, 24.0, 30, 11),
        ),
        (
            "i.i.d., Gamma/Pareto marginals",
            SourceModel::iid_gamma_pareto(est.params).generate_trace(n_frames, 24.0, 30, 11),
        ),
        (
            "AR(1) rho=0.9, Gamma/Pareto",
            SourceModel::ar1_gamma_pareto(est.params, 0.9)
                .generate_trace(n_frames, 24.0, 30, 11),
        ),
    ];

    for n_sources in [1usize, 5] {
        println!("== required capacity per source, N = {n_sources}, P_l = 0, T_max sweep ==");
        println!(
            "{:<34} {:>10} {:>10} {:>10}",
            "source", "0.5 ms", "2 ms", "8 ms"
        );
        for (name, t) in &variants {
            let sim = MuxSim::new(t, n_sources, 21);
            let caps: Vec<f64> = [0.0005, 0.002, 0.008]
                .iter()
                .map(|&tm| {
                    sim.required_capacity(tm, LossTarget::Zero, LossMetric::Overall, 20)
                        / n_sources as f64
                        * 8.0
                        / 1e6
                })
                .collect();
            println!(
                "{:<34} {:>9.2}M {:>9.2}M {:>9.2}M",
                name, caps[0], caps[1], caps[2]
            );
        }
        println!();
    }
    println!("reading the table the way the paper reads Fig 16:");
    println!(" - the full model tracks the trace best;");
    println!(" - dropping the heavy tail (Gaussian) or the LRD (i.i.d./AR(1))");
    println!("   underestimates the required capacity — SRD models are overly");
    println!("   optimistic, which is the paper's central warning;");
    println!(" - agreement improves as N grows and marginals Gaussianise.");
}
