//! Full statistical analysis of a VBR trace — the §3 toolbox end to end:
//! Table 2 statistics, marginal-distribution comparison (Figs 4–6),
//! autocorrelation (Fig 7), periodogram (Fig 8) and the complete Hurst
//! estimation suite (Table 3).
//!
//! ```sh
//! cargo run --release --example analyze_trace [path/to/trace.bin]
//! ```
//!
//! With no argument a 60 000-frame synthetic movie trace is analysed.

use vbr::prelude::*;
use vbr::stats::dist::ContinuousDist;
use vbr::stats::{autocorrelation, Ecdf, Periodogram};

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => Trace::load(&path).unwrap_or_else(|e| {
            eprintln!("failed to load {path}: {e}");
            std::process::exit(1);
        }),
        None => generate_screenplay(&ScreenplayConfig::short(60_000, 3)),
    };
    let series = trace.frame_series();

    println!("== Table 2-style statistics ==");
    for (name, s) in [("frame", trace.summary_frame()), ("slice", trace.summary_slice())] {
        println!(
            "{name:>6}: dT={:.3} ms  mean={:.1}  sd={:.1}  CoV={:.2}  max={:.0}  min={:.0}  peak/mean={:.2}",
            s.delta_t_ms, s.mean, s.std_dev, s.coef_variation, s.max, s.min, s.peak_to_mean
        );
    }

    // Marginal-model comparison at a few tail quantiles (Fig 4's story).
    println!("\n== tail CCDF: empirical vs fitted models ==");
    let ecdf = Ecdf::new(&series);
    let mean = trace.summary_frame().mean;
    let sd = trace.summary_frame().std_dev;
    let normal = Normal::from_moments(mean, sd);
    let gamma = Gamma::from_moments(mean, sd);
    let lognormal = Lognormal::from_moments(mean, sd);
    let est = estimate_trace(&trace, &EstimateOptions::default());
    let hybrid = est.params.marginal();
    println!("{:>10} {:>12} {:>12} {:>12} {:>12} {:>12}", "x", "empirical", "Normal", "Gamma", "Lognormal", "Gamma/Pareto");
    for q in [0.9, 0.99, 0.999, 0.9999] {
        let x = ecdf.quantile(q);
        println!(
            "{:>10.0} {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e} {:>12.2e}",
            x,
            ecdf.ccdf(x),
            normal.ccdf(x),
            gamma.ccdf(x),
            lognormal.ccdf(x),
            hybrid.ccdf(x),
        );
    }

    // Autocorrelation decay (Fig 7): exponential fit fails beyond ~300 lags.
    println!("\n== autocorrelation ==");
    let acf = autocorrelation(&series, 5_000.min(series.len() / 4));
    let rho = vbr::stats::acf::exponential_fit(&acf, 100);
    for lag in [1usize, 10, 100, 300, 1000, 3000] {
        if lag < acf.len() {
            println!(
                "r({lag:>5}) = {:+.4}   exp-fit rho^k would be {:+.2e}",
                acf[lag],
                rho.powi(lag as i32)
            );
        }
    }

    // Periodogram low-frequency power law (Fig 8).
    let pg = Periodogram::compute(&series);
    let fit = pg.low_freq_slope(0.05);
    println!(
        "\n== periodogram ==\nlow-frequency power law: I(w) ~ w^{:.2}  (alpha = {:.2}, H = {:.3})",
        fit.slope,
        -fit.slope,
        (1.0 - fit.slope) / 2.0
    );

    // The full Table 3.
    println!("\n== Hurst estimates (Table 3) ==");
    let rep = hurst_report(&series, &ReportOptions::default());
    for (name, h) in rep.estimates() {
        println!("{name:>24}: H = {h:.3}");
    }
    println!(
        "{:>24}: {:.2}-{:.2}",
        "R/S with n, M varied", rep.rs_varied_range.0, rep.rs_varied_range.1
    );
    println!(
        "{:>24}: {:.3} ± {:.3} (95% CI)",
        "Whittle (aggregated)",
        rep.whittle.hurst,
        1.96 * rep.whittle.std_err
    );
}
