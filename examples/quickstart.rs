//! Quickstart: the full analyse → model → generate → verify loop in
//! under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vbr::prelude::*;

fn main() {
    // 1. Get a VBR video trace. (With real data you'd `Trace::load` a
    //    file; here we synthesise a 20 000-frame movie segment.)
    let trace = generate_screenplay(&ScreenplayConfig::short(20_000, 42));
    let stats = trace.summary_frame();
    println!("== trace ==");
    println!(
        "frames: {}   duration: {:.0} s   mean bandwidth: {:.2} Mb/s",
        trace.frames(),
        trace.duration_secs(),
        trace.mean_bandwidth_bps() / 1e6
    );
    println!(
        "bytes/frame: mean {:.0}, sd {:.0}, peak/mean {:.2}",
        stats.mean, stats.std_dev, stats.peak_to_mean
    );

    // 2. Estimate the four model parameters (μ_Γ, σ_Γ, m_T, H).
    let est = estimate_trace(
        &trace,
        &EstimateOptions { hurst_method: HurstMethod::VarianceTime, ..Default::default() },
    );
    let p = est.params;
    println!("\n== estimated parameters ==");
    println!("mu_gamma    = {:.0} bytes/frame", p.mu_gamma);
    println!("sigma_gamma = {:.0} bytes/frame", p.sigma_gamma);
    println!("tail slope  = {:.2}  (log-log CCDF slope, R² = {:.3})", p.tail_slope, est.tail_fit_r2);
    println!("Hurst H     = {:.3}", p.hurst);

    // 3. Generate synthetic traffic from the fitted model.
    let model = SourceModel::full(p);
    let synthetic = model.generate_trace(20_000, 24.0, 30, 7);
    let s = synthetic.summary_frame();
    println!("\n== synthetic traffic from the fitted model ==");
    println!(
        "bytes/frame: mean {:.0}, sd {:.0}, peak/mean {:.2}",
        s.mean, s.std_dev, s.peak_to_mean
    );

    // 4. Verify the synthetic traffic is long-range dependent too.
    let vt = variance_time(&synthetic.frame_series(), &VtOptions::default());
    println!("variance-time H of the synthetic traffic: {:.3}", vt.hurst);

    // 5. Size a link for it: capacity needed for one source at
    //    T_max = 2 ms and overall loss ≤ 1e-3.
    let sim = MuxSim::new(&synthetic, 1, 1);
    let c = sim.required_capacity(0.002, LossTarget::Rate(1e-3), LossMetric::Overall, 22);
    println!(
        "\nrequired capacity @ T_max = 2 ms, P_l <= 1e-3: {:.2} Mb/s \
         (mean rate {:.2} Mb/s)",
        c * 8.0 / 1e6,
        sim.mean_rate() * 8.0 / 1e6
    );
}
